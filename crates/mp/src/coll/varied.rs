//! Variable-count collectives (`MPI_Scatterv` / `MPI_Gatherv` semantics)
//! and `MPI_Reduce_scatter`.

use patternlets_core::reduce::ReduceOp;
use patternlets_core::{Error, Result};

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::envelope::opcodes;

impl Comm {
    /// `MPI_Scatterv`: the root supplies one buffer *per rank* (possibly of
    /// different lengths); each rank receives its own.
    pub fn scatter_varied<T: Datatype + Clone>(
        &self,
        root: usize,
        sendbufs: Option<&[Vec<T>]>,
    ) -> Result<Vec<T>> {
        let p = self.size();
        if root >= p {
            return Err(Error::RankOutOfRange {
                rank: root,
                size: p,
            });
        }
        let tags = self.start_collective(opcodes::SCATTER, "scatterv")?;
        let _phase = self.trace_coll("scatterv");
        let _lat = self.metric_coll("scatterv");
        if self.rank() == root {
            let bufs = sendbufs.ok_or_else(|| {
                Error::InvalidConfig("scatter_varied: root must supply buffers".into())
            })?;
            if bufs.len() != p {
                return Err(Error::CountMismatch {
                    expected: p,
                    found: bufs.len(),
                });
            }
            for (r, buf) in bufs.iter().enumerate() {
                if r != root {
                    self.send_internal(buf, r, tags(0))?;
                }
            }
            Ok(bufs[root].clone())
        } else {
            let (data, _) = self.recv_internal::<T>(root.into(), tags(0).into())?;
            Ok(data)
        }
    }

    /// `MPI_Reduce_scatter` (equal block sizes): elementwise-reduce every
    /// rank's buffer, then scatter the result so rank `i` holds block `i`.
    /// `local.len()` must be `block_len × size`.
    pub fn reduce_scatter<T: Datatype + Clone>(
        &self,
        local: &[T],
        op: &dyn ReduceOp<T>,
    ) -> Result<Vec<T>> {
        let p = self.size();
        if !local.len().is_multiple_of(p) {
            return Err(Error::CountMismatch {
                expected: local.len().div_ceil(p) * p,
                found: local.len(),
            });
        }
        // Reduce to rank 0, then scatter the combined vector.
        let combined = self.reduce(0, local, op)?;
        self.scatter(0, combined.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use patternlets_core::reduce::ops;

    #[test]
    fn scatter_varied_delivers_ragged_buffers() {
        let out = World::run(3, |comm| {
            let bufs: Option<Vec<Vec<i64>>> = if comm.is_master() {
                Some(vec![vec![], vec![10], vec![20, 21]])
            } else {
                None
            };
            comm.scatter_varied(0, bufs.as_deref()).unwrap()
        });
        assert_eq!(out, vec![vec![], vec![10], vec![20, 21]]);
    }

    #[test]
    fn scatter_varied_wrong_bucket_count_rejected() {
        let out = World::run(2, |comm| {
            let bufs: Option<Vec<Vec<i64>>> = if comm.is_master() {
                Some(vec![vec![1]])
            } else {
                None
            };
            comm.scatter_varied(0, bufs.as_deref())
        });
        assert!(matches!(
            out[0],
            Err(Error::CountMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_block() {
        // 3 ranks, 2 elements per block: rank r contributes
        // [r, r, r, r, r, r]; the sum per element is 0+1+2 = 3.
        let out = World::run(3, |comm| {
            let local = vec![comm.rank() as i64; 6];
            comm.reduce_scatter(&local, &ops::Sum).unwrap()
        });
        assert!(out.iter().all(|b| b == &[3, 3]));
    }

    #[test]
    fn reduce_scatter_blocks_are_positional() {
        // Element j of rank r's buffer is r*10 + j; the reduced vector is
        // sum_r(r*10) + p*j per... verify blocks differ by position.
        let out = World::run(2, |comm| {
            let local: Vec<i64> = (0..4).map(|j| (comm.rank() * 10 + j) as i64).collect();
            comm.reduce_scatter(&local, &ops::Sum).unwrap()
        });
        // Reduced vector: [10, 12, 14, 16]; rank 0 gets [10, 12], rank 1 [14, 16].
        assert_eq!(out[0], vec![10, 12]);
        assert_eq!(out[1], vec![14, 16]);
    }

    #[test]
    fn reduce_scatter_uneven_rejected() {
        let out = World::run(2, |comm| comm.reduce_scatter(&[1i64, 2, 3], &ops::Sum));
        assert!(matches!(out[0], Err(Error::CountMismatch { .. })));
    }
}
