//! `MPI_Bcast` — binomial tree (the *Broadcast* pattern, paper §III.E).

use patternlets_core::{Error, Result};

use crate::comm::Comm;
use crate::datatype::{decode_payload, Datatype};
use crate::envelope::{opcodes, Payload};

impl Comm {
    /// Broadcast `buf` from `root` to every rank. On the root, `buf` is the
    /// input; on every other rank it is replaced with the root's data —
    /// the in-place shape of `MPI_Bcast`.
    ///
    /// Binomial tree: `p − 1` messages over `⌈lg p⌉` rounds; interior
    /// ranks forward as soon as they receive.
    pub fn bcast<T: Datatype>(&self, root: usize, buf: &mut Vec<T>) -> Result<()> {
        let p = self.size();
        if root >= p {
            return Err(Error::RankOutOfRange {
                rank: root,
                size: p,
            });
        }
        let tags = self.start_collective(opcodes::BCAST, "bcast")?;
        let _phase = self.trace_coll("bcast");
        let _lat = self.metric_coll("bcast");
        let me = self.rank();
        let vrank = (me + p - root) % p;

        // Receive from the parent: the bit position of vrank's lowest set
        // bit names the round in which our subtree was reached. Keep the
        // raw envelope — the payload is forwarded to our children before
        // it is decoded, so one payload travels the whole tree.
        let mut incoming = None;
        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % p;
                incoming = Some(self.recv_envelope::<T>(parent.into(), tags(0).into())?);
                break;
            }
            mask <<= 1;
        }
        // Forward to children: every bit below our lowest set bit (all
        // bits, for the root). Every child gets a clone of the same
        // payload — a refcount bump in either representation — prepared
        // lazily at the root on the first child (locality is uniform
        // across peers on every backend, so one child is representative).
        let count = incoming.as_ref().map_or(buf.len(), |env| env.count);
        let mut outgoing: Option<Payload> = incoming.as_ref().map(|env| env.payload.clone());
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < p {
                let child = (vrank + mask + root) % p;
                let payload = outgoing
                    .get_or_insert_with(|| self.prepare_payload(buf.as_slice(), child))
                    .clone();
                self.send_prepared(payload, T::TYPE_NAME, count, child, tags(0), false)?;
            }
            mask >>= 1;
        }
        // Decode last (and release our forwarding clone first): a leaf —
        // or an interior rank whose children have already consumed their
        // copies — recovers the vector without copying at all.
        drop(outgoing);
        if let Some(env) = incoming {
            *buf = decode_payload::<T>(env.payload, env.count)?;
        }
        Ok(())
    }

    /// Linear broadcast: the root sends to every rank directly. `p − 1`
    /// messages, all from one sender — the naive algorithm the binomial
    /// tree is measured against in the `mp_collectives` bench.
    pub fn bcast_linear<T: Datatype>(&self, root: usize, buf: &mut Vec<T>) -> Result<()> {
        let p = self.size();
        if root >= p {
            return Err(Error::RankOutOfRange {
                rank: root,
                size: p,
            });
        }
        let tags = self.start_collective(opcodes::BCAST, "bcast")?;
        let _phase = self.trace_coll("bcast");
        let _lat = self.metric_coll("bcast");
        if self.rank() == root {
            // One payload, prepared once, cloned per destination.
            let mut outgoing: Option<Payload> = None;
            for r in 0..p {
                if r != root {
                    let payload = outgoing
                        .get_or_insert_with(|| self.prepare_payload(buf.as_slice(), r))
                        .clone();
                    self.send_prepared(payload, T::TYPE_NAME, buf.len(), r, tags(0), false)?;
                }
            }
        } else {
            let (data, _) = self.recv_internal::<T>(root.into(), tags(0).into())?;
            *buf = data;
        }
        Ok(())
    }

    /// Broadcast a single value from `root`; returns the value everywhere.
    pub fn bcast_one<T: Datatype + Clone>(&self, root: usize, value: Option<T>) -> Result<T> {
        let mut buf = match (self.rank() == root, value) {
            (true, Some(v)) => vec![v],
            (true, None) => {
                return Err(Error::InvalidConfig(
                    "bcast_one: root must supply the value".into(),
                ))
            }
            (false, _) => Vec::new(),
        };
        self.bcast(root, &mut buf)?;
        if buf.len() != 1 {
            return Err(Error::CountMismatch {
                expected: 1,
                found: buf.len(),
            });
        }
        Ok(buf.pop().expect("length checked"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn bcast_from_rank_zero() {
        for p in [1, 2, 3, 4, 5, 7, 8] {
            let out = World::run(p, |comm| {
                let mut buf = if comm.rank() == 0 {
                    vec![10i64, 20, 30]
                } else {
                    Vec::new()
                };
                comm.bcast(0, &mut buf).unwrap();
                buf
            });
            assert!(out.iter().all(|b| b == &[10, 20, 30]), "p={p}: {out:?}");
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        for root in 0..5 {
            let out = World::run(5, |comm| {
                let mut buf = if comm.rank() == root {
                    vec![root as u64 * 7]
                } else {
                    Vec::new()
                };
                comm.bcast(root, &mut buf).unwrap();
                buf[0]
            });
            assert!(out.iter().all(|&v| v == root as u64 * 7), "root={root}");
        }
    }

    #[test]
    fn bcast_one_convenience() {
        let out = World::run(4, |comm| {
            let v = if comm.rank() == 2 {
                Some("answer".to_string())
            } else {
                None
            };
            comm.bcast_one(2, v).unwrap()
        });
        assert!(out.iter().all(|s| s == "answer"));
    }

    #[test]
    fn bcast_invalid_root_errors() {
        let out = World::run(2, |comm| comm.bcast(9, &mut vec![0i32]));
        assert!(matches!(out[0], Err(Error::RankOutOfRange { .. })));
        assert!(matches!(out[1], Err(Error::RankOutOfRange { .. })));
    }

    #[test]
    fn successive_bcasts_keep_order() {
        let out = World::run(3, |comm| {
            let mut a = if comm.is_master() {
                vec![1i32]
            } else {
                Vec::new()
            };
            let mut b = if comm.is_master() {
                vec![2i32]
            } else {
                Vec::new()
            };
            comm.bcast(0, &mut a).unwrap();
            comm.bcast(0, &mut b).unwrap();
            (a[0], b[0])
        });
        assert!(out.iter().all(|&x| x == (1, 2)));
    }

    #[test]
    fn linear_and_tree_bcast_agree() {
        for p in [1, 2, 3, 5, 8] {
            let out = World::run(p, |comm| {
                let mut tree = if comm.rank() == 1 % p {
                    vec![7i64, 8]
                } else {
                    Vec::new()
                };
                comm.bcast(1 % p, &mut tree).unwrap();
                let mut lin = if comm.rank() == 1 % p {
                    vec![7i64, 8]
                } else {
                    Vec::new()
                };
                comm.bcast_linear(1 % p, &mut lin).unwrap();
                (tree, lin)
            });
            assert!(
                out.iter().all(|(t, l)| t == &[7, 8] && l == &[7, 8]),
                "p={p}"
            );
        }
    }

    #[test]
    fn bcast_empty_payload() {
        let out = World::run(3, |comm| {
            let mut buf: Vec<i32> = Vec::new();
            comm.bcast(0, &mut buf).unwrap();
            buf.len()
        });
        assert!(out.iter().all(|&n| n == 0));
    }
}
