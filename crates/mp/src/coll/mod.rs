//! Collective operations, built entirely from point-to-point messages.
//!
//! MPI's collectives are what most of the paper's MPI patternlets teach
//! (*Barrier*, *Broadcast*, *Scatter*, *Gather*, *Reduction* — §III.B–E).
//! Each collective here is implemented with the classic algorithm:
//!
//! | Collective | Algorithm | Messages | Rounds |
//! |---|---|---|---|
//! | [`crate::Comm::barrier`] | dissemination | `p⌈lg p⌉` | `⌈lg p⌉` |
//! | [`crate::Comm::bcast`] | binomial tree | `p − 1` | `⌈lg p⌉` |
//! | [`crate::Comm::reduce`] | binomial tree | `p − 1` | `⌈lg p⌉` |
//! | [`crate::Comm::scatter`] / [`crate::Comm::gather`] | linear to/from root | `p − 1` | 1 |
//! | [`crate::Comm::allgather`] | gather + bcast | `2(p − 1)` | `⌈lg p⌉ + 1` |
//! | [`crate::Comm::allreduce`] | reduce + bcast (and recursive doubling variant) | `2(p − 1)` | `2⌈lg p⌉` |
//! | [`crate::Comm::scan`] | linear chain | `p − 1` | `p − 1` |
//! | [`crate::Comm::alltoall`] | direct exchange | `p(p − 1)` | 1 |
//!
//! All collectives must be called by **every** rank of the world, in the
//! same order — the MPI rule. Reserved (negative) tags derived from a
//! per-rank collective sequence number keep adjacent collectives from
//! cross-matching.

pub mod alltoall;
pub mod barrier;
pub mod bcast;
pub mod gather;
pub mod reduce;
pub mod scan;
pub mod scatter;
pub mod varied;
