//! `MPI_Scatter` — the *Scatter* pattern (paper §III.E): the root deals
//! equal slices of its buffer to every rank.

use patternlets_core::{Error, Result};

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::envelope::opcodes;

impl Comm {
    /// Scatter `sendbuf` (significant only at `root`) evenly over all
    /// ranks; every rank receives its `len/p` slice. `sendbuf.len()` must
    /// be a multiple of the world size, the `MPI_Scatter` equal-count rule.
    pub fn scatter<T: Datatype + Clone>(
        &self,
        root: usize,
        sendbuf: Option<&[T]>,
    ) -> Result<Vec<T>> {
        let p = self.size();
        if root >= p {
            return Err(Error::RankOutOfRange {
                rank: root,
                size: p,
            });
        }
        let tags = self.start_collective(opcodes::SCATTER, "scatter")?;
        let _phase = self.trace_coll("scatter");
        let _lat = self.metric_coll("scatter");
        if self.rank() == root {
            let data = sendbuf
                .ok_or_else(|| Error::InvalidConfig("scatter: root must supply sendbuf".into()))?;
            if data.len() % p != 0 {
                return Err(Error::CountMismatch {
                    expected: data.len().div_ceil(p) * p,
                    found: data.len(),
                });
            }
            let chunk = data.len() / p;
            for r in 0..p {
                if r != root {
                    self.send_internal(&data[r * chunk..(r + 1) * chunk], r, tags(0))?;
                }
            }
            Ok(data[root * chunk..(root + 1) * chunk].to_vec())
        } else {
            let (data, _) = self.recv_internal::<T>(root.into(), tags(0).into())?;
            Ok(data)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn scatter_deals_contiguous_slices_in_rank_order() {
        let out = World::run(4, |comm| {
            let send: Option<Vec<i64>> = if comm.is_master() {
                Some((0..12).collect())
            } else {
                None
            };
            comm.scatter(0, send.as_deref()).unwrap()
        });
        assert_eq!(out[0], vec![0, 1, 2]);
        assert_eq!(out[1], vec![3, 4, 5]);
        assert_eq!(out[2], vec![6, 7, 8]);
        assert_eq!(out[3], vec![9, 10, 11]);
    }

    #[test]
    fn scatter_from_nonzero_root() {
        let out = World::run(3, |comm| {
            let send: Option<Vec<u32>> = if comm.rank() == 2 {
                Some(vec![7, 8, 9])
            } else {
                None
            };
            comm.scatter(2, send.as_deref()).unwrap()
        });
        assert_eq!(out, vec![vec![7], vec![8], vec![9]]);
    }

    #[test]
    fn scatter_uneven_count_rejected() {
        let out = World::run(3, |comm| {
            let send: Option<Vec<i32>> = if comm.is_master() {
                Some(vec![1, 2, 3, 4])
            } else {
                None
            };
            comm.scatter(0, send.as_deref())
        });
        assert!(matches!(out[0], Err(Error::CountMismatch { .. })));
    }

    #[test]
    fn scatter_single_rank_is_identity() {
        let out = World::run(1, |comm| comm.scatter(0, Some(&[5i32, 6][..])).unwrap());
        assert_eq!(out, vec![vec![5, 6]]);
    }

    #[test]
    fn scatter_missing_sendbuf_at_root_errors() {
        let out = World::run(1, |comm| comm.scatter::<i32>(0, None));
        assert!(matches!(out[0], Err(Error::InvalidConfig(_))));
    }
}
