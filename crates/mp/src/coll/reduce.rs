//! `MPI_Reduce` / `MPI_Allreduce` — the *Reduction* pattern over messages
//! (paper §III.D, Figures 23–24).

use patternlets_core::reduce::ReduceOp;
use patternlets_core::{Error, Result};

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::envelope::opcodes;

impl Comm {
    /// Combine every rank's `local` buffer elementwise with `op`, leaving
    /// the result at `root` (`Some` there, `None` elsewhere).
    ///
    /// Binomial combining tree: `p − 1` messages in `⌈lg p⌉` rounds — the
    /// message-passing realization of the paper's Figure 19. Partials are
    /// combined in contiguous virtual-rank order (virtual rank = rank
    /// rotated so the root is 0), so any *associative* op is safe when
    /// `root == 0`; with a non-zero root the order is rotated, so
    /// non-commutative ops should reduce to root 0 and send.
    pub fn reduce<T: Datatype + Clone>(
        &self,
        root: usize,
        local: &[T],
        op: &dyn ReduceOp<T>,
    ) -> Result<Option<Vec<T>>> {
        let p = self.size();
        if root >= p {
            return Err(Error::RankOutOfRange {
                rank: root,
                size: p,
            });
        }
        let tags = self.start_collective(opcodes::REDUCE, "reduce")?;
        let _phase = self.trace_coll("reduce");
        let _lat = self.metric_coll("reduce");
        let me = self.rank();
        let vrank = (me + p - root) % p;
        let mut acc: Vec<T> = local.to_vec();

        let mut mask = 1usize;
        while mask < p {
            if vrank & mask != 0 {
                // Send our accumulated block to the partner covering the
                // block to our left, then leave the tree.
                let dst = (vrank - mask + root) % p;
                self.send_internal(&acc, dst, tags(0))?;
                return Ok(None);
            }
            let src_v = vrank + mask;
            if src_v < p {
                let src = (src_v + root) % p;
                let (incoming, _) = self.recv_internal::<T>(src.into(), tags(0).into())?;
                if incoming.len() != acc.len() {
                    return Err(Error::CountMismatch {
                        expected: acc.len(),
                        found: incoming.len(),
                    });
                }
                // Our block is to the LEFT of the incoming block in
                // virtual-rank order.
                for (a, b) in acc.iter_mut().zip(incoming) {
                    *a = op.combine(a.clone(), b);
                }
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Reduce a single value to `root`.
    pub fn reduce_one<T: Datatype + Clone>(
        &self,
        root: usize,
        local: T,
        op: &dyn ReduceOp<T>,
    ) -> Result<Option<T>> {
        Ok(self
            .reduce(root, std::slice::from_ref(&local), op)?
            .map(|mut v| v.pop().expect("one element in, one out")))
    }

    /// `MPI_Allreduce`: reduce to rank 0, then broadcast — every rank gets
    /// the combined result.
    pub fn allreduce<T: Datatype + Clone>(
        &self,
        local: &[T],
        op: &dyn ReduceOp<T>,
    ) -> Result<Vec<T>> {
        let mut buf = self.reduce(0, local, op)?.unwrap_or_default();
        self.bcast(0, &mut buf)?;
        Ok(buf)
    }

    /// Recursive-doubling allreduce: `⌈lg p⌉` rounds of pairwise exchange,
    /// no root bottleneck. Combine order interleaves blocks, so `op`
    /// should be **commutative** (like `MPI_SUM`, `MPI_MAX`); that is the
    /// trade the classic algorithm makes, and the `mp_collectives` bench
    /// compares it against [`Comm::allreduce`].
    pub fn allreduce_rd<T: Datatype + Clone>(
        &self,
        local: &[T],
        op: &dyn ReduceOp<T>,
    ) -> Result<Vec<T>> {
        let p = self.size();
        let me = self.rank();
        let tags = self.start_collective(opcodes::ALLREDUCE, "allreduce")?;
        let _phase = self.trace_coll("allreduce");
        let _lat = self.metric_coll("allreduce");
        let mut acc: Vec<T> = local.to_vec();

        // Fold ranks beyond the largest power of two into low partners.
        let pow2 = p.next_power_of_two() / if p.is_power_of_two() { 1 } else { 2 };
        let extra = p - pow2;
        let combine = |acc: &mut Vec<T>, incoming: Vec<T>| -> Result<()> {
            if incoming.len() != acc.len() {
                return Err(Error::CountMismatch {
                    expected: acc.len(),
                    found: incoming.len(),
                });
            }
            for (a, b) in acc.iter_mut().zip(incoming) {
                *a = op.combine(a.clone(), b);
            }
            Ok(())
        };

        if me >= pow2 {
            // Surplus rank: hand partial to (me - pow2), wait for result.
            self.send_internal(&acc, me - pow2, tags(0))?;
            let (result, _) = self.recv_internal::<T>((me - pow2).into(), tags(1).into())?;
            return Ok(result);
        }
        if me < extra {
            let (incoming, _) = self.recv_internal::<T>((me + pow2).into(), tags(0).into())?;
            combine(&mut acc, incoming)?;
        }
        // Butterfly over the pow2 core.
        let mut mask = 1usize;
        let mut round = 2u32;
        while mask < pow2 {
            let partner = me ^ mask;
            self.send_internal(&acc, partner, tags(round))?;
            let (incoming, _) = self.recv_internal::<T>(partner.into(), tags(round).into())?;
            combine(&mut acc, incoming)?;
            mask <<= 1;
            round += 1;
        }
        if me < extra {
            self.send_internal(&acc, me + pow2, tags(1))?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use patternlets_core::reduce::ops;

    #[test]
    fn reduce_matches_paper_figure_24() {
        // Paper Fig. 23/24: 10 processes, each computes (rank+1)^2;
        // sum = 385, max = 100.
        let out = World::run(10, |comm| {
            let square = ((comm.rank() + 1) * (comm.rank() + 1)) as i64;
            let sum = comm.reduce_one(0, square, &ops::Sum).unwrap();
            let max = comm.reduce_one(0, square, &ops::Max).unwrap();
            (sum, max)
        });
        assert_eq!(out[0], (Some(385), Some(100)));
        assert!(out[1..].iter().all(|o| *o == (None, None)));
    }

    #[test]
    fn reduce_elementwise_vectors() {
        let out = World::run(4, |comm| {
            let local = vec![comm.rank() as i64, 10 + comm.rank() as i64];
            comm.reduce(0, &local, &ops::Sum).unwrap()
        });
        assert_eq!(out[0].as_deref(), Some(&[6i64, 46][..]));
    }

    #[test]
    fn reduce_to_every_possible_root() {
        for root in 0..5 {
            let out = World::run(5, |comm| {
                comm.reduce_one(root, comm.rank() as i64 + 1, &ops::Prod)
                    .unwrap()
            });
            for (r, v) in out.iter().enumerate() {
                if r == root {
                    assert_eq!(*v, Some(120));
                } else {
                    assert_eq!(*v, None);
                }
            }
        }
    }

    #[test]
    fn reduce_noncommutative_at_root_zero_preserves_rank_order() {
        let op = ops::FnOp::new(String::new(), |a: String, b: String| a + &b);
        for p in [1, 2, 3, 4, 6, 8] {
            let out = World::run(p, |comm| {
                comm.reduce_one(0, comm.rank().to_string(), &op).unwrap()
            });
            let expected: String = (0..p).map(|r| r.to_string()).collect();
            assert_eq!(out[0].as_deref(), Some(expected.as_str()), "p={p}");
        }
    }

    #[test]
    fn reduce_minloc_finds_owner() {
        // Each rank holds a value; MINLOC finds the min and who had it.
        let values = [7i64, 3, 9, 3, 8];
        let out = World::run(5, |comm| {
            let pair = (values[comm.rank()], comm.rank());
            comm.reduce_one(0, pair, &ops::MinLoc).unwrap()
        });
        assert_eq!(out[0], Some((3, 1)), "ties break to the lower rank");
    }

    #[test]
    fn allreduce_gives_everyone_the_result() {
        for p in [1, 2, 3, 4, 5, 8] {
            let out = World::run(p, |comm| {
                comm.allreduce(&[comm.rank() as i64 + 1], &ops::Sum)
                    .unwrap()[0]
            });
            let expected = (p * (p + 1) / 2) as i64;
            assert!(out.iter().all(|&v| v == expected), "p={p}: {out:?}");
        }
    }

    #[test]
    fn allreduce_rd_matches_allreduce_for_commutative_ops() {
        for p in [1, 2, 3, 4, 5, 6, 7, 8] {
            let out = World::run(p, |comm| {
                let a = comm.allreduce(&[comm.rank() as i64], &ops::Sum).unwrap();
                let b = comm.allreduce_rd(&[comm.rank() as i64], &ops::Sum).unwrap();
                let c = comm.allreduce_rd(&[comm.rank() as i64], &ops::Max).unwrap();
                (a[0], b[0], c[0])
            });
            let sum = (0..p as i64).sum::<i64>();
            let max = p as i64 - 1;
            assert!(
                out.iter()
                    .all(|&(a, b, c)| a == sum && b == sum && c == max),
                "p={p}: {out:?}"
            );
        }
    }

    #[test]
    fn reduce_count_mismatch_detected() {
        let out = World::run(2, |comm| {
            let local: Vec<i64> = vec![0; comm.rank() + 1];
            comm.reduce(0, &local, &ops::Sum)
        });
        assert!(matches!(out[0], Err(Error::CountMismatch { .. })));
    }
}
