//! `MPI_Alltoall` — total exchange: rank `i`'s `j`-th block lands in rank
//! `j`'s result at position `i`.

use patternlets_core::{Error, Result};

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::envelope::opcodes;

impl Comm {
    /// Total exchange. `sendbuf.len()` must be a multiple of the world
    /// size; block `j` (of `len/p` elements) is sent to rank `j`, and the
    /// result concatenates one block from every rank, in rank order.
    pub fn alltoall<T: Datatype + Clone>(&self, sendbuf: &[T]) -> Result<Vec<T>> {
        let p = self.size();
        if !sendbuf.len().is_multiple_of(p) {
            return Err(Error::CountMismatch {
                expected: sendbuf.len().div_ceil(p) * p,
                found: sendbuf.len(),
            });
        }
        let tags = self.start_collective(opcodes::ALLTOALL, "alltoall")?;
        let _phase = self.trace_coll("alltoall");
        let _lat = self.metric_coll("alltoall");
        let chunk = sendbuf.len() / p;
        // Eager sends to everyone, including self (the self-send shortcut
        // delivers that block straight into our own mailbox).
        for dst in 0..p {
            self.send_internal(&sendbuf[dst * chunk..(dst + 1) * chunk], dst, tags(0))?;
        }
        let mut out = Vec::with_capacity(sendbuf.len());
        for src in 0..p {
            let (block, _) = self.recv_internal::<T>(src.into(), tags(0).into())?;
            if block.len() != chunk {
                return Err(Error::CountMismatch {
                    expected: chunk,
                    found: block.len(),
                });
            }
            out.extend(block);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn alltoall_transposes_blocks() {
        // Rank i sends value i*10 + j to rank j; rank j ends with
        // [0*10+j, 1*10+j, ...].
        let out = World::run(4, |comm| {
            let send: Vec<i64> = (0..4).map(|j| (comm.rank() * 10 + j) as i64).collect();
            comm.alltoall(&send).unwrap()
        });
        for (j, row) in out.iter().enumerate() {
            let expected: Vec<i64> = (0..4).map(|i| (i * 10 + j) as i64).collect();
            assert_eq!(row, &expected);
        }
    }

    #[test]
    fn alltoall_multiblock() {
        let out = World::run(2, |comm| {
            let r = comm.rank() as i32;
            // Two elements per destination.
            let send = vec![r * 100, r * 100 + 1, r * 100 + 10, r * 100 + 11];
            comm.alltoall(&send).unwrap()
        });
        assert_eq!(out[0], vec![0, 1, 100, 101]);
        assert_eq!(out[1], vec![10, 11, 110, 111]);
    }

    #[test]
    fn alltoall_single_rank_is_identity() {
        let out = World::run(1, |comm| comm.alltoall(&[1i32, 2, 3]).unwrap());
        assert_eq!(out[0], vec![1, 2, 3]);
    }

    #[test]
    fn alltoall_uneven_rejected() {
        let out = World::run(2, |comm| comm.alltoall(&[1i32, 2, 3]));
        assert!(matches!(out[0], Err(Error::CountMismatch { .. })));
    }
}
