//! `MPI_Scan` / `MPI_Exscan` — prefix reductions across ranks.

use patternlets_core::reduce::ReduceOp;
use patternlets_core::{Error, Result};

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::envelope::opcodes;

impl Comm {
    /// Inclusive prefix reduction: rank `i` receives
    /// `op(local_0, …, local_i)`, elementwise. Linear chain (`p − 1`
    /// messages), preserving rank order for non-commutative ops.
    pub fn scan<T: Datatype + Clone>(&self, local: &[T], op: &dyn ReduceOp<T>) -> Result<Vec<T>> {
        let tags = self.start_collective(opcodes::SCAN, "scan")?;
        let _phase = self.trace_coll("scan");
        let _lat = self.metric_coll("scan");
        let me = self.rank();
        let p = self.size();
        let mut acc: Vec<T> = local.to_vec();
        if me > 0 {
            let (prefix, _) = self.recv_internal::<T>((me - 1).into(), tags(0).into())?;
            if prefix.len() != acc.len() {
                return Err(Error::CountMismatch {
                    expected: acc.len(),
                    found: prefix.len(),
                });
            }
            for (a, pfx) in acc.iter_mut().zip(prefix) {
                *a = op.combine(pfx, a.clone());
            }
        }
        if me + 1 < p {
            self.send_internal(&acc, me + 1, tags(0))?;
        }
        Ok(acc)
    }

    /// Exclusive prefix reduction: rank 0 gets `None`; rank `i > 0` gets
    /// `op(local_0, …, local_{i−1})`.
    pub fn exscan<T: Datatype + Clone>(
        &self,
        local: &[T],
        op: &dyn ReduceOp<T>,
    ) -> Result<Option<Vec<T>>> {
        let tags = self.start_collective(opcodes::SCAN, "exscan")?;
        let _phase = self.trace_coll("exscan");
        let _lat = self.metric_coll("exscan");
        let me = self.rank();
        let p = self.size();
        let prefix: Option<Vec<T>> = if me > 0 {
            let (pfx, _) = self.recv_internal::<T>((me - 1).into(), tags(0).into())?;
            Some(pfx)
        } else {
            None
        };
        if me + 1 < p {
            // Forward prefix ⊕ local.
            let mut next: Vec<T> = local.to_vec();
            if let Some(pfx) = &prefix {
                if pfx.len() != next.len() {
                    return Err(Error::CountMismatch {
                        expected: next.len(),
                        found: pfx.len(),
                    });
                }
                for (n, pfx_v) in next.iter_mut().zip(pfx.iter().cloned()) {
                    *n = op.combine(pfx_v, n.clone());
                }
            }
            self.send_internal(&next, me + 1, tags(0))?;
        }
        Ok(prefix)
    }
}

#[cfg(test)]
mod tests {
    use crate::world::World;
    use patternlets_core::reduce::ops;

    #[test]
    fn inclusive_scan_of_ranks() {
        let out = World::run(5, |comm| {
            comm.scan(&[comm.rank() as i64 + 1], &ops::Sum).unwrap()[0]
        });
        assert_eq!(out, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn exclusive_scan_of_ranks() {
        let out = World::run(5, |comm| {
            comm.exscan(&[comm.rank() as i64 + 1], &ops::Sum)
                .unwrap()
                .map(|v| v[0])
        });
        assert_eq!(out, vec![None, Some(1), Some(3), Some(6), Some(10)]);
    }

    #[test]
    fn scan_preserves_order_for_noncommutative() {
        let op = ops::FnOp::new(String::new(), |a: String, b: String| a + &b);
        let out = World::run(4, |comm| {
            comm.scan(&[comm.rank().to_string()], &op)
                .unwrap()
                .pop()
                .unwrap()
        });
        assert_eq!(out, vec!["0", "01", "012", "0123"]);
    }

    #[test]
    fn scan_single_rank() {
        let out = World::run(1, |comm| comm.scan(&[9i64], &ops::Sum).unwrap()[0]);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn scan_elementwise() {
        let out = World::run(3, |comm| {
            let r = comm.rank() as i64;
            comm.scan(&[r, 10 * r], &ops::Sum).unwrap()
        });
        assert_eq!(out[2], vec![3, 30]);
    }
}
