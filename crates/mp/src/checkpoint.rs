//! Rank-local checkpoint files for fail/respawn recovery.
//!
//! A [`CheckpointStore`] owns one file per rank in a shared directory and
//! rewrites it atomically (temp file + rename) on every
//! [`save`](CheckpointStore::save), so a rank killed mid-write leaves
//! either the previous complete checkpoint or the new one — never a torn
//! file. The payload travels through the same [`Datatype`] codecs as
//! messages, and the whole record is covered by the same CRC-32 the wire
//! frames use, so a corrupt file is rejected on
//! [`load`](CheckpointStore::load) instead of resurrecting garbage state.
//!
//! This is the persistence half of `pmrun --respawn`: workers checkpoint
//! between steps, the launcher restarts a dead worker, and the respawned
//! rank calls `load` to rejoin from its last completed step instead of
//! from scratch. The store itself is plain file I/O with no metering —
//! [`Comm::checkpoint`](crate::Comm::checkpoint) and
//! [`Comm::restore`](crate::Comm::restore) wrap it with counters and the
//! save-latency histogram.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::{Bytes, BytesMut};
use patternlets_core::{crc32, Error, Result};

use crate::datatype::Datatype;

/// File magic: "PLCK" (PatternLets ChecKpoint).
const MAGIC: &[u8; 4] = b"PLCK";
/// Format version; bump on layout changes.
const VERSION: u32 = 1;

/// One rank's checkpoint slot in a shared directory.
///
/// The slot holds at most one checkpoint (the latest); each save replaces
/// the previous one atomically. Ranks never touch each other's files, so
/// no cross-process locking is needed.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    rank: usize,
}

impl CheckpointStore {
    /// Open (creating the directory if needed) rank `rank`'s slot under
    /// `dir`.
    pub fn new(dir: impl Into<PathBuf>, rank: usize) -> Result<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| Error::InvalidConfig(format!("checkpoint dir {}: {e}", dir.display())))?;
        Ok(CheckpointStore { dir, rank })
    }

    /// The rank this store belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Path of this rank's checkpoint file.
    pub fn path(&self) -> PathBuf {
        self.dir.join(format!("rank-{}.ckpt", self.rank))
    }

    /// Persist `data` as the checkpoint for `step`, replacing any previous
    /// checkpoint. Returns the number of bytes written (for metering).
    pub fn save<T: Datatype>(&self, step: u64, data: &[T]) -> Result<u64> {
        let mut payload = BytesMut::new();
        T::encode_slice(data, &mut payload);
        let record = encode_record(step, data.len() as u64, T::TYPE_NAME, &payload);
        let tmp = self.dir.join(format!("rank-{}.ckpt.tmp", self.rank));
        write_file(&tmp, &record)
            .and_then(|()| fs::rename(&tmp, self.path()))
            .map_err(|e| {
                let _ = fs::remove_file(&tmp);
                Error::InvalidConfig(format!("checkpoint write {}: {e}", self.path().display()))
            })?;
        Ok(record.len() as u64)
    }

    /// Load the latest checkpoint, if one exists. `Ok(None)` means no
    /// checkpoint has been taken yet (a fresh start); a present-but-invalid
    /// file — bad magic, wrong element type, CRC mismatch — is an error,
    /// because silently restarting from nothing would mask corruption.
    pub fn load<T: Datatype>(&self) -> Result<Option<(u64, Vec<T>)>> {
        let bytes = match fs::read(self.path()) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(Error::InvalidConfig(format!(
                    "checkpoint read {}: {e}",
                    self.path().display()
                )))
            }
        };
        let (step, data) = decode_record::<T>(&bytes).map_err(|e| codec_at(self.path(), e))?;
        Ok(Some((step, data)))
    }
}

fn codec_at(path: PathBuf, err: Error) -> Error {
    match err {
        Error::Codec(msg) => Error::Codec(format!("{}: {msg}", path.display())),
        other => other,
    }
}

fn write_file(path: &Path, record: &[u8]) -> std::io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(record)?;
    file.sync_all()
}

/// Record layout (all integers little-endian):
/// `MAGIC | version u32 | step u64 | count u64 | name_len u32 | name |
///  payload_len u64 | payload | crc32-of-everything-before u32`.
fn encode_record(step: u64, count: u64, type_name: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + 8 + 8 + 4 + type_name.len() + 8 + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&step.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(&(type_name.len() as u32).to_le_bytes());
    out.extend_from_slice(type_name.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&out).to_le_bytes());
    out
}

fn decode_record<T: Datatype>(bytes: &[u8]) -> Result<(u64, Vec<T>)> {
    let mut cur = Cursor { bytes, at: 0 };
    if cur.take(4)? != MAGIC {
        return Err(Error::Codec("not a checkpoint file (bad magic)".into()));
    }
    let version = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
    if version != VERSION {
        return Err(Error::Codec(format!(
            "checkpoint format v{version}, this build reads v{VERSION}"
        )));
    }
    let step = u64::from_le_bytes(cur.take(8)?.try_into().unwrap());
    let count = u64::from_le_bytes(cur.take(8)?.try_into().unwrap());
    let name_len = u32::from_le_bytes(cur.take(4)?.try_into().unwrap()) as usize;
    let name = cur.take(name_len)?;
    if name != T::TYPE_NAME.as_bytes() {
        return Err(Error::TypeMismatch {
            expected: T::TYPE_NAME,
            found: String::from_utf8_lossy(name).into_owned(),
        });
    }
    let payload_len = u64::from_le_bytes(cur.take(8)?.try_into().unwrap()) as usize;
    let payload = cur.take(payload_len)?.to_vec();
    let stored = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
    let computed = crc32(&bytes[..bytes.len() - 4]);
    if cur.at != bytes.len() {
        return Err(Error::Codec(format!(
            "checkpoint has {} trailing bytes",
            bytes.len() - cur.at
        )));
    }
    if stored != computed {
        return Err(Error::Codec(format!(
            "checkpoint crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    let data = T::decode_slice(&Bytes::from(payload), count as usize)?;
    Ok((step, data))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return Err(Error::Codec(format!(
                "checkpoint truncated at byte {} (wanted {n} more)",
                self.at
            )));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plck-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = scratch_dir("roundtrip");
        let store = CheckpointStore::new(&dir, 2).unwrap();
        assert_eq!(store.load::<i64>().unwrap(), None);
        store.save(7, &[10i64, 20, 30]).unwrap();
        assert_eq!(store.load::<i64>().unwrap(), Some((7, vec![10, 20, 30])));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn saves_replace_and_keep_only_the_latest() {
        let dir = scratch_dir("replace");
        let store = CheckpointStore::new(&dir, 0).unwrap();
        store.save(1, &[1.5f64]).unwrap();
        store.save(2, &[2.5f64, 3.5]).unwrap();
        assert_eq!(store.load::<f64>().unwrap(), Some((2, vec![2.5, 3.5])));
        // One file per rank; the temp file does not linger.
        let entries: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ranks_have_independent_slots() {
        let dir = scratch_dir("slots");
        let a = CheckpointStore::new(&dir, 0).unwrap();
        let b = CheckpointStore::new(&dir, 1).unwrap();
        a.save(1, &[1i32]).unwrap();
        b.save(9, &[9i32]).unwrap();
        assert_eq!(a.load::<i32>().unwrap(), Some((1, vec![1])));
        assert_eq!(b.load::<i32>().unwrap(), Some((9, vec![9])));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_not_restored() {
        let dir = scratch_dir("corrupt");
        let store = CheckpointStore::new(&dir, 0).unwrap();
        store.save(3, &[42u64; 8]).unwrap();
        let path = store.path();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = store.load::<u64>().unwrap_err();
        assert!(
            err.to_string().contains("crc mismatch") || err.to_string().contains("type"),
            "unexpected error: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_element_type_is_a_type_mismatch() {
        let dir = scratch_dir("type");
        let store = CheckpointStore::new(&dir, 0).unwrap();
        store.save(1, &[1i32, 2]).unwrap();
        match store.load::<f64>() {
            Err(Error::TypeMismatch { expected, found }) => {
                assert_eq!(expected, "f64");
                assert_eq!(found, "i32");
            }
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = scratch_dir("trunc");
        let store = CheckpointStore::new(&dir, 0).unwrap();
        store.save(5, &[7i64; 4]).unwrap();
        let path = store.path();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        assert!(store.load::<i64>().is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
