//! Message envelopes: source, tag, type, count, payload.

use bytes::Bytes;

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Which communicator this message belongs to; receives only match
    /// envelopes from their own communicator.
    pub comm_id: u64,
    /// Sending rank, in the communicator's local numbering.
    pub src: usize,
    /// Message tag. Non-negative for user messages; negative tags are
    /// reserved for collectives.
    pub tag: i32,
    /// Element type name (from [`crate::Datatype::TYPE_NAME`]).
    pub type_name: &'static str,
    /// Element count.
    pub count: usize,
    /// Encoded payload.
    pub payload: Bytes,
    /// Per-sender sequence number (diagnostics; also documents the
    /// non-overtaking order).
    pub seq: u64,
    /// Synchronous-send handshake: the receiver must acknowledge this
    /// envelope on the reserved ack tag when it matches it.
    pub needs_ack: bool,
}

/// The reserved tag on which synchronous-send acknowledgements travel;
/// disambiguated by the sender's sequence number folded into the tag.
pub(crate) fn ack_tag(seq: u64) -> i32 {
    // A disjoint negative namespace from collective tags (which are
    // ≥ -(2^27)): acks live below -(2^28).
    -((1 << 28) + (seq % (1 << 27)) as i32)
}

/// Build the reserved tag for collective call number `coll_seq` of
/// operation `opcode`, optionally sub-tagged by `round`.
///
/// Every rank calls collectives in the same order, so `coll_seq` agrees
/// across ranks and successive collectives can never cross-match, even when
/// the same pair of ranks exchanges messages in both.
pub(crate) fn collective_tag(coll_seq: u64, opcode: u8, round: u32) -> i32 {
    // Pack (seq mod 2^16, opcode mod 2^4, round mod 2^6) below zero.
    let seq = (coll_seq % (1 << 16)) as i32;
    let op = (opcode % 16) as i32;
    let rnd = (round % 64) as i32;
    -(1 + (((seq << 4) | op) << 6 | rnd))
}

/// Is `tag` a collective-internal tag — as opposed to a user tag (≥ 0)
/// or a synchronous-send acknowledgement (below −2²⁸)? The failure model
/// treats collective receives specially: they fail fast when *any* group
/// member has died, while user and ack receives only depend on their
/// actual sender.
pub(crate) fn is_collective_tag(tag: i32) -> bool {
    (-(1 << 28)..0).contains(&tag)
}

/// Collective opcodes for tag construction.
pub(crate) mod opcodes {
    pub const BARRIER: u8 = 0;
    pub const BCAST: u8 = 1;
    pub const SCATTER: u8 = 2;
    pub const GATHER: u8 = 3;
    pub const REDUCE: u8 = 5;
    pub const ALLREDUCE: u8 = 6;
    pub const SCAN: u8 = 7;
    pub const ALLTOALL: u8 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_tags_do_not_collide_with_collective_tags() {
        for seq in [0u64, 1, 1000, (1 << 27) - 1] {
            let ack = ack_tag(seq);
            assert!(ack < 0);
            for cseq in [0u64, 65_535] {
                for op in 0..9u8 {
                    assert_ne!(ack, collective_tag(cseq, op, 0));
                }
            }
        }
    }

    #[test]
    fn collective_tags_are_negative() {
        for seq in [0u64, 1, 17, 65_535, 65_536] {
            for op in 0..9u8 {
                for round in [0u32, 5, 63] {
                    // All collective tags sit below 0, the reserved ceiling.
                    assert!(collective_tag(seq, op, round) < 0);
                }
            }
        }
    }

    #[test]
    fn collective_tags_distinguish_nearby_calls() {
        let mut tags = std::collections::HashSet::new();
        for seq in 0..64u64 {
            for op in 0..9u8 {
                for round in 0..8u32 {
                    assert!(
                        tags.insert(collective_tag(seq, op, round)),
                        "tag collision at seq={seq} op={op} round={round}"
                    );
                }
            }
        }
    }

    #[test]
    fn envelope_fields_round_trip() {
        let env = Envelope {
            comm_id: 0,
            src: 3,
            needs_ack: false,
            tag: 42,
            type_name: "i32",
            count: 2,
            payload: Bytes::from_static(&[1, 0, 0, 0, 2, 0, 0, 0]),
            seq: 7,
        };
        assert_eq!(env.src, 3);
        assert_eq!(env.tag, 42);
        assert_eq!(env.count, 2);
        assert_eq!(env.payload.len(), 8);
    }
}
