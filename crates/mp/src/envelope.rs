//! Message envelopes: source, tag, type, count, payload.

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use crate::datatype::Datatype;

/// Largest wire encoding stored inline in an envelope. Above this, the
/// byte-copy cost of the inline array exceeds what the `Arc`/`Bytes`
/// representations amortize; below it, a message's payload lives
/// entirely on the stack — no allocation, no refcount traffic.
pub const INLINE_MAX: usize = 64;

/// A message payload, in one of three representations.
///
/// `Bytes` is the wire form: the element slice run through
/// [`Datatype::encode_slice`], exactly what crosses a socket. `InProc` is
/// the same-process fast path: shared ownership of the sender's element
/// vector, so delivery between ranks that share an address space is one
/// `Arc` refcount bump instead of an encode/decode round trip. `Inline`
/// is the small-message fast path: wire encodings of at most
/// [`INLINE_MAX`] bytes ride in a fixed array inside the envelope
/// itself, skipping the per-message heap allocation that dominates tiny
/// sends in *either* other form. All three are interchangeable at the
/// transport seam — [`Payload::to_wire`] recovers the byte form on
/// demand, so a network backend never needs to know which representation
/// a sender chose.
#[derive(Clone)]
pub enum Payload {
    /// Encoded wire form (cheap to clone: `Bytes` is refcounted).
    Bytes(Bytes),
    /// Shared in-process form (cheap to clone: one `Arc` bump).
    InProc(SharedPayload),
    /// Small wire form stored inline (cheap to clone: a memcpy of at
    /// most [`INLINE_MAX`] bytes, no heap involvement at all).
    Inline {
        /// The encoding, in `buf[..len as usize]`.
        buf: [u8; INLINE_MAX],
        /// Valid prefix length (`<= INLINE_MAX`).
        len: u8,
    },
}

impl Payload {
    /// Encode `data` (whose wire form is known to fit [`INLINE_MAX`])
    /// into an inline payload. Encoding goes through a thread-local
    /// scratch buffer, so steady-state sends allocate nothing.
    pub fn inline<T: Datatype>(data: &[T]) -> Payload {
        thread_local! {
            static SCRATCH: RefCell<BytesMut> = RefCell::new(BytesMut::new());
        }
        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            scratch.clear();
            T::encode_slice(data, &mut scratch);
            debug_assert!(scratch.len() <= INLINE_MAX, "caller checked encoded_len");
            let mut buf = [0u8; INLINE_MAX];
            buf[..scratch.len()].copy_from_slice(&scratch);
            Payload::Inline {
                buf,
                len: scratch.len() as u8,
            }
        })
    }

    /// Size of the wire encoding in bytes (without producing it for
    /// `InProc` payloads — the encoded length is precomputed at send).
    pub fn len(&self) -> usize {
        match self {
            Payload::Bytes(bytes) => bytes.len(),
            Payload::InProc(shared) => shared.wire_len,
            Payload::Inline { len, .. } => *len as usize,
        }
    }

    /// True when the wire encoding is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The wire (byte) form: a cheap clone for `Bytes`, an on-demand
    /// encode for `InProc`, a copy-out for `Inline`. This is the
    /// transparent fallback a network backend uses at the framing seam.
    pub fn to_wire(&self) -> Bytes {
        match self {
            Payload::Bytes(bytes) => bytes.clone(),
            Payload::InProc(shared) => shared.to_wire(),
            Payload::Inline { buf, len } => Bytes::copy_from_slice(&buf[..*len as usize]),
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Bytes(bytes) => write!(f, "Bytes({} B)", bytes.len()),
            Payload::InProc(shared) => shared.fmt(f),
            Payload::Inline { len, .. } => write!(f, "Inline({len} B)"),
        }
    }
}

impl fmt::Debug for SharedPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InProc({} B encoded)", self.wire_len)
    }
}

/// Shared ownership of a sender's element vector, plus a monomorphised
/// encoder so the wire form can be recovered at the transport seam
/// without knowing the element type, and the precomputed wire length so
/// tracing and the message log report the same byte counts either way.
#[derive(Clone)]
pub struct SharedPayload {
    data: Arc<dyn Any + Send + Sync>,
    encode: fn(&(dyn Any + Send + Sync)) -> Bytes,
    wire_len: usize,
}

impl SharedPayload {
    /// Wrap a slice for in-process delivery. One copy happens here (into
    /// the `Arc`); every subsequent clone — per-child forwarding in a
    /// collective tree, duplicate transmissions — is a refcount bump.
    pub fn for_slice<T>(data: &[T]) -> SharedPayload
    where
        T: Datatype + Clone + Sync,
    {
        SharedPayload {
            data: Arc::new(data.to_vec()),
            encode: |any| {
                let vec = any
                    .downcast_ref::<Vec<T>>()
                    .expect("a shared payload holds the Vec it was built from");
                crate::datatype::encode(vec)
            },
            wire_len: T::encoded_len(data),
        }
    }

    /// Recover the element vector: zero-copy (`Arc::try_unwrap`) when
    /// this is the last clone, one `Vec` clone otherwise. `Err` returns
    /// the payload untouched when it holds a different element type, so
    /// the caller can fall back to the wire form.
    pub fn try_take<T>(self) -> std::result::Result<Vec<T>, SharedPayload>
    where
        T: Any + Send + Sync + Clone,
    {
        let SharedPayload {
            data,
            encode,
            wire_len,
        } = self;
        match data.downcast::<Vec<T>>() {
            Ok(vec) => Ok(Arc::try_unwrap(vec).unwrap_or_else(|shared| (*shared).clone())),
            Err(data) => Err(SharedPayload {
                data,
                encode,
                wire_len,
            }),
        }
    }

    /// Encode the held vector to its wire form.
    pub fn to_wire(&self) -> Bytes {
        (self.encode)(self.data.as_ref())
    }
}

/// One in-flight message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Which communicator this message belongs to; receives only match
    /// envelopes from their own communicator.
    pub comm_id: u64,
    /// Sending rank, in the communicator's local numbering.
    pub src: usize,
    /// Message tag. Non-negative for user messages; negative tags are
    /// reserved for collectives.
    pub tag: i32,
    /// Element type name (from [`crate::Datatype::TYPE_NAME`]).
    pub type_name: &'static str,
    /// Element count.
    pub count: usize,
    /// The payload, in wire or shared in-process form.
    pub payload: Payload,
    /// Per-sender sequence number (diagnostics; also documents the
    /// non-overtaking order).
    pub seq: u64,
    /// Synchronous-send handshake: the receiver must acknowledge this
    /// envelope on the reserved ack tag when it matches it.
    pub needs_ack: bool,
}

/// The reserved tag on which synchronous-send acknowledgements travel;
/// disambiguated by the sender's sequence number folded into the tag.
pub(crate) fn ack_tag(seq: u64) -> i32 {
    // A disjoint negative namespace from collective tags (which are
    // ≥ -(2^27)): acks live below -(2^28).
    -((1 << 28) + (seq % (1 << 27)) as i32)
}

/// Build the reserved tag for collective call number `coll_seq` of
/// operation `opcode`, optionally sub-tagged by `round`.
///
/// Every rank calls collectives in the same order, so `coll_seq` agrees
/// across ranks and successive collectives can never cross-match, even when
/// the same pair of ranks exchanges messages in both.
pub(crate) fn collective_tag(coll_seq: u64, opcode: u8, round: u32) -> i32 {
    // Pack (seq mod 2^16, opcode mod 2^4, round mod 2^6) below zero.
    let seq = (coll_seq % (1 << 16)) as i32;
    let op = (opcode % 16) as i32;
    let rnd = (round % 64) as i32;
    -(1 + (((seq << 4) | op) << 6 | rnd))
}

/// Is `tag` a collective-internal tag — as opposed to a user tag (≥ 0)
/// or a synchronous-send acknowledgement (below −2²⁸)? The failure model
/// treats collective receives specially: they fail fast when *any* group
/// member has died, while user and ack receives only depend on their
/// actual sender.
pub(crate) fn is_collective_tag(tag: i32) -> bool {
    (-(1 << 28)..0).contains(&tag)
}

/// Collective opcodes for tag construction.
pub(crate) mod opcodes {
    pub const BARRIER: u8 = 0;
    pub const BCAST: u8 = 1;
    pub const SCATTER: u8 = 2;
    pub const GATHER: u8 = 3;
    pub const REDUCE: u8 = 5;
    pub const ALLREDUCE: u8 = 6;
    pub const SCAN: u8 = 7;
    pub const ALLTOALL: u8 = 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_tags_do_not_collide_with_collective_tags() {
        for seq in [0u64, 1, 1000, (1 << 27) - 1] {
            let ack = ack_tag(seq);
            assert!(ack < 0);
            for cseq in [0u64, 65_535] {
                for op in 0..9u8 {
                    assert_ne!(ack, collective_tag(cseq, op, 0));
                }
            }
        }
    }

    #[test]
    fn collective_tags_are_negative() {
        for seq in [0u64, 1, 17, 65_535, 65_536] {
            for op in 0..9u8 {
                for round in [0u32, 5, 63] {
                    // All collective tags sit below 0, the reserved ceiling.
                    assert!(collective_tag(seq, op, round) < 0);
                }
            }
        }
    }

    #[test]
    fn collective_tags_distinguish_nearby_calls() {
        let mut tags = std::collections::HashSet::new();
        for seq in 0..64u64 {
            for op in 0..9u8 {
                for round in 0..8u32 {
                    assert!(
                        tags.insert(collective_tag(seq, op, round)),
                        "tag collision at seq={seq} op={op} round={round}"
                    );
                }
            }
        }
    }

    #[test]
    fn envelope_fields_round_trip() {
        let env = Envelope {
            comm_id: 0,
            src: 3,
            needs_ack: false,
            tag: 42,
            type_name: "i32",
            count: 2,
            payload: Payload::Bytes(Bytes::from_static(&[1, 0, 0, 0, 2, 0, 0, 0])),
            seq: 7,
        };
        assert_eq!(env.src, 3);
        assert_eq!(env.tag, 42);
        assert_eq!(env.count, 2);
        assert_eq!(env.payload.len(), 8);
    }

    #[test]
    fn shared_payload_encodes_to_the_same_wire_form() {
        let data = vec![1i32, 2, 3];
        let shared = SharedPayload::for_slice(&data);
        let direct = crate::datatype::encode(&data);
        assert_eq!(shared.wire_len, direct.len());
        assert_eq!(&shared.to_wire()[..], &direct[..]);
        let payload = Payload::InProc(shared);
        assert_eq!(payload.len(), direct.len());
        assert_eq!(&payload.to_wire()[..], &direct[..]);
    }

    #[test]
    fn inline_payload_matches_the_wire_form() {
        let data = vec![1i32, 2, 3];
        let direct = crate::datatype::encode(&data);
        let payload = Payload::inline(&data);
        assert_eq!(payload.len(), direct.len());
        assert_eq!(&payload.to_wire()[..], &direct[..]);
        let back = crate::datatype::decode_payload::<i32>(payload, 3).unwrap();
        assert_eq!(back, data);
        // The cutover bound itself fits.
        let full = vec![0xABu8; INLINE_MAX];
        let payload = Payload::inline(&full);
        assert_eq!(payload.len(), INLINE_MAX);
        assert_eq!(&payload.to_wire()[..], &full[..]);
    }

    #[test]
    fn shared_payload_take_is_zero_copy_when_sole_owner() {
        let shared = SharedPayload::for_slice(&[7i64, 8]);
        // Sole owner: try_take recovers the vector without cloning.
        assert_eq!(shared.try_take::<i64>().unwrap(), vec![7, 8]);
        // Wrong element type: the payload comes back for wire fallback.
        let shared = SharedPayload::for_slice(&[7i64, 8]);
        let back = shared.try_take::<i32>().unwrap_err();
        assert_eq!(back.to_wire().len(), 16);
    }
}
