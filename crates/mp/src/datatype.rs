//! Wire encoding — the `MPI_Datatype` analogue.
//!
//! Payloads cross rank boundaries as bytes, never as shared pointers, which
//! is what makes the runtime honestly "distributed memory": a received
//! value is a *copy*, decoded from the wire, exactly as it would be after a
//! real network hop.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use patternlets_core::{Error, Result};

use crate::envelope::{Payload, SharedPayload};

/// A type that can be sent in a message. Mirrors the built-in
/// `MPI_Datatype`s (`MPI_INT`, `MPI_DOUBLE`, `MPI_CHAR`, ...), plus
/// `String` for convenience (hostnames in the SPMD patternlet).
pub trait Datatype: Sized + Send + 'static {
    /// Stable name used for envelope type checking.
    const TYPE_NAME: &'static str;

    /// Append the encoding of `data` to `out`.
    fn encode_slice(data: &[Self], out: &mut BytesMut);

    /// Decode a whole payload of `count` elements.
    fn decode_slice(bytes: &Bytes, count: usize) -> Result<Vec<Self>>;

    /// Exact size of `data`'s wire encoding. The default produces the
    /// encoding into a scratch buffer and measures it; impls with a
    /// closed-form size override this so the in-process fast path never
    /// encodes at all.
    fn encoded_len(data: &[Self]) -> usize {
        let mut out = BytesMut::new();
        Self::encode_slice(data, &mut out);
        out.len()
    }

    /// Opt into the in-process zero-copy path: wrap `data` in a
    /// [`SharedPayload`] (one copy into an `Arc`, refcount bumps after).
    /// The default returns `None` — the sender falls back to byte
    /// encoding — because sharing requires `Clone + Sync`, which this
    /// trait deliberately does not demand of every implementor.
    fn to_shared(data: &[Self]) -> Option<SharedPayload> {
        let _ = data;
        None
    }

    /// Recover an element vector from a shared payload, zero-copy when
    /// the receiver holds the last clone. `Err` hands the payload back so
    /// the caller can decode its wire form instead; the default always
    /// does so, matching the default `to_shared`.
    fn from_shared(shared: SharedPayload) -> std::result::Result<Vec<Self>, SharedPayload> {
        Err(shared)
    }
}

/// Decode a received payload into elements: wire payloads run through
/// [`Datatype::decode_slice`]; shared in-process payloads are recovered
/// via [`Datatype::from_shared`] (zero-copy when this receiver holds the
/// last clone), falling back to the wire form if the type opted out.
pub(crate) fn decode_payload<T: Datatype>(payload: Payload, count: usize) -> Result<Vec<T>> {
    match payload {
        Payload::Bytes(bytes) => T::decode_slice(&bytes, count),
        Payload::InProc(shared) => match T::from_shared(shared) {
            Ok(data) => {
                if data.len() != count {
                    return Err(Error::Codec(format!(
                        "{}: shared payload holds {} elements, envelope says {count}",
                        T::TYPE_NAME,
                        data.len()
                    )));
                }
                Ok(data)
            }
            Err(shared) => T::decode_slice(&shared.to_wire(), count),
        },
        Payload::Inline { buf, len } => {
            T::decode_slice(&Bytes::copy_from_slice(&buf[..len as usize]), count)
        }
    }
}

macro_rules! impl_fixed {
    ($($t:ty => $name:literal, $size:expr, $put:ident, $get:ident;)*) => {$(
        impl Datatype for $t {
            const TYPE_NAME: &'static str = $name;

            fn encode_slice(data: &[Self], out: &mut BytesMut) {
                out.reserve(data.len() * $size);
                for v in data {
                    out.$put(*v);
                }
            }

            fn decode_slice(bytes: &Bytes, count: usize) -> Result<Vec<Self>> {
                if bytes.len() != count * $size {
                    return Err(Error::Codec(format!(
                        "{}: payload is {} bytes, expected {} x {}",
                        $name, bytes.len(), count, $size
                    )));
                }
                let mut buf = bytes.clone();
                Ok((0..count).map(|_| buf.$get()).collect())
            }

            fn encoded_len(data: &[Self]) -> usize {
                data.len() * $size
            }

            fn to_shared(data: &[Self]) -> Option<SharedPayload> {
                Some(SharedPayload::for_slice(data))
            }

            fn from_shared(shared: SharedPayload) -> std::result::Result<Vec<Self>, SharedPayload> {
                shared.try_take::<Self>()
            }
        }
    )*};
}

impl_fixed! {
    i32 => "i32", 4, put_i32_le, get_i32_le;
    i64 => "i64", 8, put_i64_le, get_i64_le;
    u32 => "u32", 4, put_u32_le, get_u32_le;
    u64 => "u64", 8, put_u64_le, get_u64_le;
    f32 => "f32", 4, put_f32_le, get_f32_le;
    f64 => "f64", 8, put_f64_le, get_f64_le;
    u8  => "u8",  1, put_u8,     get_u8;
}

impl Datatype for bool {
    const TYPE_NAME: &'static str = "bool";

    fn encode_slice(data: &[Self], out: &mut BytesMut) {
        out.reserve(data.len());
        for v in data {
            out.put_u8(*v as u8);
        }
    }

    fn decode_slice(bytes: &Bytes, count: usize) -> Result<Vec<Self>> {
        if bytes.len() != count {
            return Err(Error::Codec(format!(
                "bool: payload is {} bytes, expected {count}",
                bytes.len()
            )));
        }
        bytes
            .iter()
            .map(|&b| match b {
                0 => Ok(false),
                1 => Ok(true),
                other => Err(Error::Codec(format!("bool: invalid byte {other}"))),
            })
            .collect()
    }

    fn encoded_len(data: &[Self]) -> usize {
        data.len()
    }

    fn to_shared(data: &[Self]) -> Option<SharedPayload> {
        Some(SharedPayload::for_slice(data))
    }

    fn from_shared(shared: SharedPayload) -> std::result::Result<Vec<Self>, SharedPayload> {
        shared.try_take::<Self>()
    }
}

impl Datatype for usize {
    const TYPE_NAME: &'static str = "usize";

    fn encode_slice(data: &[Self], out: &mut BytesMut) {
        out.reserve(data.len() * 8);
        for v in data {
            out.put_u64_le(*v as u64);
        }
    }

    fn decode_slice(bytes: &Bytes, count: usize) -> Result<Vec<Self>> {
        let wide = u64::decode_slice(bytes, count)?;
        wide.into_iter()
            .map(|v| {
                usize::try_from(v).map_err(|_| Error::Codec(format!("usize: value {v} too large")))
            })
            .collect()
    }

    fn encoded_len(data: &[Self]) -> usize {
        data.len() * 8
    }

    fn to_shared(data: &[Self]) -> Option<SharedPayload> {
        Some(SharedPayload::for_slice(data))
    }

    fn from_shared(shared: SharedPayload) -> std::result::Result<Vec<Self>, SharedPayload> {
        shared.try_take::<Self>()
    }
}

impl Datatype for String {
    const TYPE_NAME: &'static str = "String";

    fn encode_slice(data: &[Self], out: &mut BytesMut) {
        for s in data {
            out.put_u64_le(s.len() as u64);
            out.put_slice(s.as_bytes());
        }
    }

    fn decode_slice(bytes: &Bytes, count: usize) -> Result<Vec<Self>> {
        let mut buf = bytes.clone();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 8 {
                return Err(Error::Codec("String: truncated length".into()));
            }
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(Error::Codec("String: truncated body".into()));
            }
            let body = buf.copy_to_bytes(len);
            out.push(
                String::from_utf8(body.to_vec())
                    .map_err(|e| Error::Codec(format!("String: {e}")))?,
            );
        }
        if buf.has_remaining() {
            return Err(Error::Codec("String: trailing bytes".into()));
        }
        Ok(out)
    }

    fn encoded_len(data: &[Self]) -> usize {
        data.iter().map(|s| 8 + s.len()).sum()
    }

    fn to_shared(data: &[Self]) -> Option<SharedPayload> {
        Some(SharedPayload::for_slice(data))
    }

    fn from_shared(shared: SharedPayload) -> std::result::Result<Vec<Self>, SharedPayload> {
        shared.try_take::<Self>()
    }
}

/// `(value, location)` pairs for `MPI_MINLOC`/`MPI_MAXLOC` reductions.
/// `T` carries no `Clone`/`Sync` bound here, so these pairs keep the
/// default `to_shared`/`from_shared` and always travel encoded.
impl<T: Datatype> Datatype for (T, usize) {
    const TYPE_NAME: &'static str = "(T, usize)";

    fn encode_slice(data: &[Self], out: &mut BytesMut) {
        for (v, loc) in data {
            let mut one = BytesMut::new();
            T::encode_slice(std::slice::from_ref(v), &mut one);
            out.put_u64_le(one.len() as u64);
            out.put_slice(&one);
            out.put_u64_le(*loc as u64);
        }
    }

    fn decode_slice(bytes: &Bytes, count: usize) -> Result<Vec<Self>> {
        let mut buf = bytes.clone();
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 8 {
                return Err(Error::Codec("(T, usize): truncated".into()));
            }
            let vlen = buf.get_u64_le() as usize;
            if buf.remaining() < vlen + 8 {
                return Err(Error::Codec("(T, usize): truncated".into()));
            }
            let vbytes = buf.copy_to_bytes(vlen);
            let v = T::decode_slice(&vbytes, 1)?
                .pop()
                .ok_or_else(|| Error::Codec("(T, usize): empty value".into()))?;
            let loc = buf.get_u64_le() as usize;
            out.push((v, loc));
        }
        Ok(out)
    }
}

/// Encode a slice into a standalone payload.
pub fn encode<T: Datatype>(data: &[T]) -> Bytes {
    let mut out = BytesMut::new();
    T::encode_slice(data, &mut out);
    out.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip<T: Datatype + Clone + PartialEq + std::fmt::Debug>(data: &[T]) {
        let payload = encode(data);
        let back = T::decode_slice(&payload, data.len()).expect("decode");
        assert_eq!(back, data);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&[1i32, -2, i32::MAX, i32::MIN]);
        roundtrip(&[1i64, -2, i64::MAX, i64::MIN]);
        roundtrip(&[0u32, u32::MAX]);
        roundtrip(&[0u64, u64::MAX]);
        roundtrip(&[0.5f32, -1.25, f32::INFINITY]);
        roundtrip(&[0.5f64, -1.25, f64::NEG_INFINITY]);
        roundtrip(&[0u8, 255]);
        roundtrip(&[true, false, true]);
        roundtrip(&[0usize, 42, usize::MAX]);
        roundtrip::<i32>(&[]);
    }

    #[test]
    fn string_roundtrips() {
        roundtrip(&["".to_string(), "node-01".to_string(), "héllo ☺".to_string()]);
    }

    #[test]
    fn loc_pairs_roundtrip() {
        roundtrip(&[(3i64, 0usize), (-5, 7), (i64::MAX, usize::MAX)]);
        roundtrip(&[(1.5f64, 2usize)]);
    }

    #[test]
    fn wrong_length_is_codec_error() {
        let payload = encode(&[1i32, 2, 3]);
        assert!(i32::decode_slice(&payload, 2).is_err());
        assert!(i32::decode_slice(&payload, 4).is_err());
        // Valid as 12 bytes of u8 though — type checking happens at the
        // envelope layer, not here.
        assert!(u8::decode_slice(&payload, 12).is_ok());
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        assert_eq!(i32::encoded_len(&[1, 2, 3]), encode(&[1i32, 2, 3]).len());
        assert_eq!(u8::encoded_len(&[9; 17]), 17);
        assert_eq!(bool::encoded_len(&[true, false]), 2);
        assert_eq!(usize::encoded_len(&[1, 2]), 16);
        let strings = ["".to_string(), "hé".to_string()];
        assert_eq!(String::encoded_len(&strings), encode(&strings).len());
        let pairs = [(3i64, 0usize), (-5, 7)];
        assert_eq!(<(i64, usize)>::encoded_len(&pairs), encode(&pairs).len());
    }

    #[test]
    fn shared_round_trip_through_payload() {
        use crate::envelope::Payload;
        let data = vec![10i64, 20, 30];
        let shared = i64::to_shared(&data).expect("i64 opts into sharing");
        let back = decode_payload::<i64>(Payload::InProc(shared), 3).unwrap();
        assert_eq!(back, data);
        // Pairs opt out: to_shared is None, and a foreign shared payload
        // falls back to wire decoding.
        assert!(<(i64, usize)>::to_shared(&[(1, 2)]).is_none());
    }

    #[test]
    fn invalid_bool_byte_rejected() {
        let payload = encode(&[7u8]);
        assert!(bool::decode_slice(&payload, 1).is_err());
    }

    #[test]
    fn truncated_string_rejected() {
        let payload = encode(&["hello".to_string()]);
        let cut = payload.slice(0..payload.len() - 1);
        assert!(String::decode_slice(&cut, 1).is_err());
    }

    proptest! {
        #[test]
        fn i64_roundtrip_any(xs in proptest::collection::vec(any::<i64>(), 0..64)) {
            roundtrip(&xs);
        }

        #[test]
        fn f64_roundtrip_any(xs in proptest::collection::vec(any::<f64>(), 0..64)) {
            let payload = encode(&xs);
            let back = f64::decode_slice(&payload, xs.len()).unwrap();
            prop_assert_eq!(back.len(), xs.len());
            for (a, b) in back.iter().zip(&xs) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn string_roundtrip_any(xs in proptest::collection::vec(".{0,16}", 0..16)) {
            roundtrip(&xs);
        }
    }
}
