//! The communicator: a rank's handle on its world — `MPI_COMM_WORLD`.

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use patternlets_core::rng::{Rng, SplitMix64};
use patternlets_core::{Error, OpContext, Result};
use patternlets_metrics::{CounterId, HistId, MetricsHub, TimerGuard};
use patternlets_trace::{CollSpan, EventKind};

use crate::checkpoint::CheckpointStore;
use crate::datatype::{decode_payload, encode, Datatype};
use crate::envelope::{collective_tag, is_collective_tag, Envelope, Payload, INLINE_MAX};
use crate::fabric::{AgreeKey, AgreeSlot, Fabric};
use crate::fault::retry_backoff;
use crate::status::{SourceSel, Status, TagSel};

/// Agreement kinds for the message-free `agree`/`shrink` protocol.
const AGREE_KIND: u8 = 0;
const SHRINK_KIND: u8 = 1;

/// A rank's communicator: `MPI_COMM_WORLD` as created by
/// [`crate::World::run`], or a sub-communicator created by [`Comm::split`].
/// One per rank, not shareable across ranks (it is deliberately `!Sync`).
///
/// All ranks, tags, and collective roots are *communicator-local*: in a
/// split communicator, rank 0 is the first member, whatever its world
/// rank. Messages sent on one communicator can never be received on
/// another (envelopes carry the communicator id).
pub struct Comm {
    /// My rank within this communicator.
    local_rank: usize,
    /// World ranks of the members, indexed by communicator-local rank.
    group: Arc<Vec<usize>>,
    /// Communicator identity, for envelope matching.
    comm_id: u64,
    /// The transport backend carrying this communicator's traffic — the
    /// in-process thread fabric, or a network backend under `pmrun`.
    fabric: Arc<dyn Fabric>,
    /// Count of collective operations this rank has started; used to build
    /// reserved tags that line up across ranks.
    coll_seq: Cell<u64>,
    /// Count of agreement rounds (`agree`/`shrink`) this rank has started.
    /// Deliberately separate from `coll_seq`: a failed collective can
    /// abort at different internal stages on different ranks (the root of
    /// an allreduce dies in the reduce phase, leaves in the bcast phase),
    /// desynchronising `coll_seq` — but agreement must still line up,
    /// because it is exactly the post-failure rendezvous.
    agree_seq: Cell<u64>,
}

/// The world communicator's id.
const WORLD_COMM_ID: u64 = 0;

impl Comm {
    /// A rank's world communicator over any [`Fabric`] — the constructor
    /// both the thread backend and provider-built worlds use.
    pub(crate) fn over_fabric(rank: usize, fabric: Arc<dyn Fabric>) -> Self {
        let np = fabric.np();
        Comm {
            local_rank: rank,
            group: Arc::new((0..np).collect()),
            comm_id: WORLD_COMM_ID,
            fabric,
            coll_seq: Cell::new(0),
            agree_seq: Cell::new(0),
        }
    }

    /// This rank's id in this communicator — `MPI_Comm_rank`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// This communicator's size — `MPI_Comm_size`.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// My rank in the world (useful after [`Comm::split`]).
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.group[self.local_rank]
    }

    /// True for rank 0 of this communicator, the conventional master.
    #[inline]
    pub fn is_master(&self) -> bool {
        self.local_rank == 0
    }

    /// Simulated hostname — `MPI_Get_processor_name`.
    pub fn processor_name(&self) -> &str {
        self.fabric.rank_name(self.world_rank())
    }

    /// Emit a structured trace event on this rank's world lane, when a
    /// tracer is attached. The disabled path is a single `Option` check.
    #[inline]
    pub(crate) fn trace_event(&self, kind: impl FnOnce() -> EventKind) {
        if let Some(tracer) = self.fabric.tracer() {
            tracer.emit(self.world_rank(), kind());
        }
    }

    /// Open a collective-phase trace span (closed on drop, even on error
    /// paths), or `None` when tracing is off.
    pub(crate) fn trace_coll(&self, op: &'static str) -> Option<CollSpan> {
        self.fabric
            .tracer()
            .map(|t| t.coll_span(self.world_rank(), op))
    }

    /// Record into the metrics hub on this rank's world lane, when one is
    /// attached. Mirrors [`Comm::trace_event`]: the disabled path is a
    /// single `Option` check.
    #[inline]
    pub(crate) fn metric(&self, record: impl FnOnce(&MetricsHub, usize)) {
        if let Some(hub) = self.fabric.metrics() {
            record(hub, self.world_rank());
        }
    }

    /// Open a collective-latency timer (recorded into the per-op histogram
    /// on drop, even on error paths), or `None` when metrics are off.
    pub(crate) fn metric_coll(&self, op: &'static str) -> Option<TimerGuard<'_>> {
        self.fabric
            .metrics()
            .map(|hub| hub.timer(self.world_rank(), HistId::coll(op)))
    }

    /// Split this communicator — `MPI_Comm_split`: members calling with the
    /// same `color` form a new communicator, ordered by `(key, rank)`.
    /// Every member of this communicator must call (it is collective).
    pub fn split(&self, color: i32, key: i32) -> Result<Comm> {
        // Exchange (color, key) with every member.
        let colors = self.allgather(&[color as i64])?;
        let keys = self.allgather(&[key as i64])?;
        // Members of my color, ordered by (key, parent rank).
        let mut members: Vec<usize> = (0..self.size())
            .filter(|&r| colors[r] == color as i64)
            .collect();
        members.sort_by_key(|&r| (keys[r], r));
        let local_rank = members
            .iter()
            .position(|&r| r == self.local_rank)
            .expect("caller is in its own color class");
        // A new comm id every member derives identically: hash of the
        // parent id, the split sequence number, and the color.
        let seq = self.coll_seq.get(); // advanced identically by the two allgathers
        let mut h = SplitMix64::new(
            self.comm_id ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (color as u64) << 17,
        );
        let comm_id = h.next_u64() | 1; // never collides with WORLD_COMM_ID
        let group: Vec<usize> = members.iter().map(|&r| self.group[r]).collect();
        Ok(Comm {
            local_rank,
            group: Arc::new(group),
            comm_id,
            fabric: Arc::clone(&self.fabric),
            coll_seq: Cell::new(0),
            agree_seq: Cell::new(0),
        })
    }

    /// Duplicate this communicator — `MPI_Comm_dup`: same group, isolated
    /// message space.
    pub fn dup(&self) -> Result<Comm> {
        self.split(0, self.local_rank as i32)
    }

    // -- point to point ----------------------------------------------------

    /// Buffered (eager) send of a typed slice — `MPI_Send`. User tags must
    /// be non-negative; negative tags are reserved for collectives.
    pub fn send<T: Datatype>(&self, data: &[T], dest: usize, tag: i32) -> Result<()> {
        if tag < 0 {
            return Err(Error::InvalidConfig(format!(
                "user tag {tag} is negative (reserved for collectives)"
            )));
        }
        self.send_internal(data, dest, tag)
    }

    pub(crate) fn send_internal<T: Datatype>(
        &self,
        data: &[T],
        dest: usize,
        tag: i32,
    ) -> Result<()> {
        self.send_flagged(data, dest, tag, false).map(|_| ())
    }

    /// The payload representation for a send of `data` to `dest`: the
    /// inline form for small encodings on fabrics that opt in, the shared
    /// in-process form when the fabric says the two ranks share an
    /// address space (and the element type supports sharing), the encoded
    /// wire form otherwise. Collectives call this once at the root and
    /// forward the same payload to every child.
    pub(crate) fn prepare_payload<T: Datatype>(&self, data: &[T], dest: usize) -> Payload {
        if self.fabric.inline_payloads() && T::encoded_len(data) <= INLINE_MAX {
            return Payload::inline(data);
        }
        if self
            .fabric
            .shares_address_space(self.world_rank(), self.group[dest])
        {
            if let Some(shared) = T::to_shared(data) {
                return Payload::InProc(shared);
            }
        }
        Payload::Bytes(encode(data))
    }

    /// Deliver an envelope, optionally demanding a receive-side ack.
    /// Returns the sender-side sequence number (used to match the ack).
    fn send_flagged<T: Datatype>(
        &self,
        data: &[T],
        dest: usize,
        tag: i32,
        needs_ack: bool,
    ) -> Result<u64> {
        if dest >= self.size() {
            return Err(Error::RankOutOfRange {
                rank: dest,
                size: self.size(),
            });
        }
        let payload = self.prepare_payload(data, dest);
        self.send_prepared(payload, T::TYPE_NAME, data.len(), dest, tag, needs_ack)
    }

    /// Deliver an already-prepared payload to `dest`. All the transmission
    /// machinery lives here — fault accounting, sequence numbers, tracing,
    /// chaos injection — so collectives that forward one payload to many
    /// children pay the payload preparation exactly once.
    pub(crate) fn send_prepared(
        &self,
        payload: Payload,
        type_name: &'static str,
        count: usize,
        dest: usize,
        tag: i32,
        needs_ack: bool,
    ) -> Result<u64> {
        if dest >= self.size() {
            return Err(Error::RankOutOfRange {
                rank: dest,
                size: self.size(),
            });
        }
        let me = self.world_rank();
        self.fabric.fault_op(me, "send")?;
        if self.fabric.rank_failed(self.group[dest]) {
            return Err(Error::RankFailed {
                rank: self.group[dest],
                op: OpContext::new("send").peer(dest).tag(tag),
            });
        }
        let seq = self.fabric.next_send_seq(me);
        self.fabric.record_msg(crate::world::MsgEvent {
            from: me,
            to: self.group[dest],
            comm_id: self.comm_id,
            tag,
            bytes: payload.len(),
        });
        self.trace_event(|| EventKind::MsgSend {
            to: self.group[dest],
            tag,
            bytes: payload.len(),
            seq,
        });
        self.metric(|hub, lane| {
            hub.incr(
                lane,
                match &payload {
                    Payload::InProc(_) => CounterId::MsgsSentInproc,
                    Payload::Bytes(_) => CounterId::MsgsSentEncoded,
                    Payload::Inline { .. } => CounterId::MsgsSentInline,
                },
            );
            hub.add(lane, CounterId::BytesSent, payload.len() as u64);
            hub.observe(lane, HistId::SEND_BYTES, payload.len() as u64);
        });
        let env = Envelope {
            comm_id: self.comm_id,
            src: self.local_rank,
            tag,
            type_name,
            count,
            payload,
            seq,
            needs_ack,
        };
        // Chaos, when a fault plan is installed: sleep out the injected
        // delay and the retransmission backoffs in *this* (the sender's)
        // thread so per-sender program order is never perturbed, then
        // deliver — possibly displaced past other senders' queued traffic,
        // possibly twice (the receiving mailbox deduplicates).
        let mut overtake = 0;
        let mut duplicate = false;
        if let Some(decision) = self.fabric.chaos_decision(me) {
            if !decision.delay.is_zero() {
                std::thread::sleep(decision.delay);
            }
            if decision.lost_transmissions > 0 {
                // Retransmissions are *extra transmissions* of the one
                // logical message traced above: they count here (and as
                // `Retransmit` events), never as additional sends.
                self.metric(|hub, lane| {
                    hub.add(
                        lane,
                        CounterId::Retransmits,
                        decision.lost_transmissions as u64,
                    )
                });
            }
            for attempt in 0..decision.lost_transmissions {
                self.trace_event(|| EventKind::Retransmit { attempt });
                std::thread::sleep(retry_backoff(attempt));
            }
            overtake = decision.overtake;
            duplicate = decision.duplicate;
        }
        let swallowed = if self.group[dest] == me {
            // Self-send shortcut: the destination mailbox is this rank's
            // own, so deliver straight into it instead of dispatching
            // through the fabric. Everything observable — fault ops,
            // sequence numbers, chaos draws, traces, dedup — already
            // happened above, identically to the fabric path. Skipping
            // the fabric's progress bump is safe here: a self-send
            // strictly precedes (in program order) any receive it could
            // satisfy, so no deadlock verdict can be invalidated by it.
            let mailbox = self.fabric.mailbox(me);
            if duplicate {
                mailbox.deliver_displaced(env.clone(), overtake);
                // The second copy is swallowed by our own dedup.
                !mailbox.deliver_displaced(env, 0)
            } else {
                mailbox.deliver_displaced(env, overtake);
                false
            }
        } else {
            self.fabric
                .deliver(me, self.group[dest], env, overtake, duplicate)
        };
        if swallowed {
            // A duplicate copy was observably swallowed by the receiver's
            // dedup on this call path (in-process backends only).
            self.trace_event(|| EventKind::DupDropped);
        }
        Ok(seq)
    }

    /// Synchronous send — `MPI_Ssend`: blocks until the receiver has
    /// *matched* this message, the unbuffered semantics whose head-to-head
    /// use is the classic send-send deadlock. (The runtime's deadlock
    /// detector reports that case instead of hanging — see the tests.)
    pub fn ssend<T: Datatype>(&self, data: &[T], dest: usize, tag: i32) -> Result<()> {
        if tag < 0 {
            return Err(Error::InvalidConfig(format!(
                "user tag {tag} is negative (reserved for collectives)"
            )));
        }
        let seq = self.send_flagged(data, dest, tag, true)?;
        // Wait for the receiver's ack.
        let (_, _) = self.recv_internal::<u8>(
            SourceSel::Rank(dest),
            TagSel::Tag(crate::envelope::ack_tag(seq)),
        )?;
        Ok(())
    }

    /// Send a single value.
    pub fn send_one<T: Datatype>(&self, value: T, dest: usize, tag: i32) -> Result<()> {
        self.send(std::slice::from_ref(&value), dest, tag)
    }

    /// Blocking matched receive — `MPI_Recv`. Accepts a rank or
    /// [`crate::ANY_SOURCE`], a tag or [`crate::ANY_TAG`]. Fails with
    /// [`Error::TypeMismatch`] if the matched envelope holds a different
    /// element type, and with [`Error::Deadlock`] if no matching send can
    /// ever arrive.
    pub fn recv<T: Datatype>(
        &self,
        src: impl Into<SourceSel>,
        tag: impl Into<TagSel>,
    ) -> Result<(Vec<T>, Status)> {
        self.recv_internal(src.into(), tag.into())
    }

    pub(crate) fn recv_internal<T: Datatype>(
        &self,
        src: SourceSel,
        tag: TagSel,
    ) -> Result<(Vec<T>, Status)> {
        let env = self.recv_envelope::<T>(src, tag)?;
        let status = Status {
            source: env.src,
            tag: env.tag,
            count: env.count,
        };
        let data = decode_payload::<T>(env.payload, env.count)?;
        Ok((data, status))
    }

    /// The matching half of a receive: block until an envelope matching
    /// the selectors arrives (with full failure/deadlock handling), run
    /// the ack handshake and the type check, and return the raw envelope
    /// — payload still in whichever representation the sender chose.
    /// Collectives that forward a payload down a tree receive here, clone
    /// the payload for their children, and only then decode.
    pub(crate) fn recv_envelope<T: Datatype>(
        &self,
        src: SourceSel,
        tag: TagSel,
    ) -> Result<Envelope> {
        if let SourceSel::Rank(r) = src {
            if r >= self.size() {
                return Err(Error::RankOutOfRange {
                    rank: r,
                    size: self.size(),
                });
            }
        }
        let fabric = &*self.fabric;
        let me = self.local_rank;
        let group = &self.group;
        let my_world = self.world_rank();
        fabric.fault_op(my_world, "recv")?;

        // Publish what we are about to block on, for the waits-for
        // deadlock detector; cleared on every exit path by the guard.
        let world_sources: Vec<usize> = match src {
            SourceSel::Rank(r) => vec![group[r]],
            SourceSel::Any => group.iter().copied().filter(|&w| w != my_world).collect(),
        };
        fabric.publish_wait(
            my_world,
            crate::world::WaitRecord {
                comm_id: self.comm_id,
                src,
                tag,
                world_sources,
                world_group: Arc::clone(group),
            },
        );
        struct ClearGuard<'a>(&'a dyn Fabric, usize);
        impl Drop for ClearGuard<'_> {
            fn drop(&mut self) {
                self.0.clear_wait(self.1);
            }
        }
        let _guard = ClearGuard(fabric, my_world);

        let ctx = || {
            OpContext::new("recv")
                .peer(format!("{src:?}"))
                .tag(format!("{tag:?}"))
        };
        let cycle = |op: OpContext| {
            move |graph: String| {
                Error::Deadlock(op.detail(format!("waits-for cycle with no live escape: {graph}")))
            }
        };
        let env = fabric.mailbox(my_world).recv_match(
            self.comm_id,
            src,
            tag,
            fabric.poll_interval(),
            || {
                // Collective-internal receives fail fast when ANY group
                // member has died: the collective can no longer complete
                // for anyone, whichever rank this round happens to be
                // paired with. (ULFM semantics: every survivor reports
                // the failure rather than hanging.)
                if matches!(tag, TagSel::Tag(t) if is_collective_tag(t)) {
                    if let Some(&dead) = group.iter().find(|&&w| fabric.rank_failed(w)) {
                        return Some(Error::RankFailed {
                            rank: dead,
                            op: ctx(),
                        });
                    }
                }
                match src {
                    // Receiving from myself: alive by definition (but a
                    // queued match was already checked, so self-recv
                    // without a prior self-send correctly deadlocks).
                    SourceSel::Rank(r) if r == me => {}
                    SourceSel::Rank(r) => {
                        if fabric.rank_failed(group[r]) {
                            return Some(Error::RankFailed {
                                rank: group[r],
                                op: ctx(),
                            });
                        }
                        if fabric.rank_alive(group[r]) {
                            return fabric.deadlocked(my_world).map(cycle(ctx()));
                        }
                    }
                    SourceSel::Any => {
                        // A failed sender can never send again, so it only
                        // blocks this receive once no live sender is left.
                        let mut dead = None;
                        for &w in group.iter().filter(|&&w| w != my_world) {
                            if fabric.rank_failed(w) {
                                dead.get_or_insert(w);
                            } else if fabric.rank_alive(w) {
                                return fabric.deadlocked(my_world).map(cycle(ctx()));
                            }
                        }
                        if let Some(rank) = dead {
                            return Some(Error::RankFailed { rank, op: ctx() });
                        }
                    }
                }
                Some(Error::Deadlock(
                    ctx().detail("every possible sender has finished"),
                ))
            },
            || fabric.clear_wait(my_world),
        )?;
        self.trace_event(|| EventKind::MsgRecv {
            from: self.group[env.src],
            tag: env.tag,
            bytes: env.payload.len(),
            seq: env.seq,
        });
        self.metric(|hub, lane| {
            hub.incr(lane, CounterId::MsgsRecv);
            hub.add(lane, CounterId::BytesRecv, env.payload.len() as u64);
        });
        if env.needs_ack {
            // Complete the synchronous-send handshake: tell the sender its
            // message has been matched.
            self.send_internal::<u8>(&[], env.src, crate::envelope::ack_tag(env.seq))?;
        }
        if env.type_name != T::TYPE_NAME {
            return Err(Error::TypeMismatch {
                expected: T::TYPE_NAME,
                found: env.type_name.to_string(),
            });
        }
        Ok(env)
    }

    /// Receive exactly one value; fails on count mismatch.
    pub fn recv_one<T: Datatype>(
        &self,
        src: impl Into<SourceSel>,
        tag: impl Into<TagSel>,
    ) -> Result<(T, Status)> {
        let (mut data, status) = self.recv::<T>(src, tag)?;
        if data.len() != 1 {
            return Err(Error::CountMismatch {
                expected: 1,
                found: data.len(),
            });
        }
        Ok((data.pop().expect("length checked"), status))
    }

    /// Combined send-then-receive — `MPI_Sendrecv`. The send is buffered,
    /// so exchanging with a partner who does the same cannot deadlock.
    pub fn sendrecv<T: Datatype, U: Datatype>(
        &self,
        send_data: &[T],
        dest: usize,
        send_tag: i32,
        src: impl Into<SourceSel>,
        recv_tag: impl Into<TagSel>,
    ) -> Result<(Vec<U>, Status)> {
        self.send(send_data, dest, send_tag)?;
        self.recv(src, recv_tag)
    }

    /// Non-blocking probe for a matching message — `MPI_Iprobe`.
    pub fn iprobe(&self, src: impl Into<SourceSel>, tag: impl Into<TagSel>) -> Option<Status> {
        self.fabric
            .mailbox(self.world_rank())
            .probe(self.comm_id, src.into(), tag.into())
            .map(|(source, tag, count)| Status { source, tag, count })
    }

    // -- collective plumbing -----------------------------------------------

    /// Enter a collective: reserve its tag family and check the group is
    /// intact. Returns a function from round number to tag; all ranks call
    /// collectives in the same order, so the families line up.
    ///
    /// The entry check makes collectives fail fast with
    /// [`Error::RankFailed`] on *every* survivor when a member has died —
    /// the sequence number still advances on error, so survivors stay
    /// aligned for subsequent calls.
    pub(crate) fn start_collective(
        &self,
        opcode: u8,
        op: &'static str,
    ) -> Result<impl Fn(u32) -> i32> {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        self.fabric.fault_op(self.world_rank(), op)?;
        if let Some(&dead) = self.group.iter().find(|&&w| self.fabric.rank_failed(w)) {
            return Err(Error::RankFailed {
                rank: dead,
                op: OpContext::new(op),
            });
        }
        Ok(move |round| collective_tag(seq, opcode, round))
    }

    // -- fault tolerance ---------------------------------------------------

    /// One round of the message-free agreement protocol behind
    /// [`Comm::agree`] and [`Comm::shrink`]. Members synchronise through
    /// shared transport state rather than messages, because these
    /// operations must complete even when some peers are dead.
    ///
    /// Returns the final contribution map (world rank → value). The round
    /// completes once every member has contributed, failed, or finished;
    /// failed and finished ranks can never contribute afterwards, so every
    /// caller observes the same final map.
    fn agreement_round(&self, kind: u8, value: u64, op: &'static str) -> Result<AgreeSlot> {
        let seq = self.agree_seq.get();
        self.agree_seq.set(seq + 1);
        self.fabric.fault_op(self.world_rank(), op)?;
        let key: AgreeKey = (self.comm_id, kind, seq);
        Ok(self
            .fabric
            .agreement(key, self.world_rank(), value, &self.group))
    }

    /// Fault-tolerant agreement — ULFM's `MPI_Comm_agree`: returns the
    /// logical AND of every live member's `flag`. Completes even when
    /// members have failed (their contribution is simply absent); fails
    /// with [`Error::RankFailed`] only if the *caller* has been killed.
    ///
    /// Survivors use this to reach a consistent post-failure decision
    /// ("did everyone finish their work?") before continuing.
    pub fn agree(&self, flag: bool) -> Result<bool> {
        let slot = self.agreement_round(AGREE_KIND, flag as u64, "agree")?;
        Ok(self
            .group
            .iter()
            .filter_map(|w| slot.get(w))
            .all(|&v| v != 0))
    }

    /// Build a new communicator from the surviving members — ULFM's
    /// `MPI_Comm_shrink`. Survivors keep their relative order; the new
    /// communicator has a fresh message space and working collectives.
    /// Members that fail *after* contributing are excluded by the next
    /// shrink, not this one (every caller must build the same group).
    pub fn shrink(&self) -> Result<Comm> {
        let slot = self.agreement_round(SHRINK_KIND, self.local_rank as u64, "shrink")?;
        let seq = self.agree_seq.get(); // advanced by the agreement round
        let mut members: Vec<(u64, usize)> =
            slot.iter().map(|(&world, &local)| (local, world)).collect();
        members.sort_unstable();
        let group: Vec<usize> = members.into_iter().map(|(_, world)| world).collect();
        let local_rank = group
            .iter()
            .position(|&w| w == self.world_rank())
            .expect("caller contributed to the shrink round");
        // Every survivor derives the same fresh id from the parent id and
        // the round's sequence number.
        let mut h =
            SplitMix64::new(self.comm_id ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA17);
        let comm_id = h.next_u64() | 1;
        Ok(Comm {
            local_rank,
            group: Arc::new(group),
            comm_id,
            fabric: Arc::clone(&self.fabric),
            coll_seq: Cell::new(0),
            agree_seq: Cell::new(0),
        })
    }

    /// Persist `data` as this rank's checkpoint for `step` — the metered
    /// front door to [`CheckpointStore::save`]. Counts the checkpoint and
    /// its bytes, and records the save latency, against this rank's
    /// metrics lane.
    pub fn checkpoint<T: Datatype>(
        &self,
        store: &CheckpointStore,
        step: u64,
        data: &[T],
    ) -> Result<()> {
        let started = Instant::now();
        let bytes = store.save(step, data)?;
        self.metric(|hub, lane| {
            hub.incr(lane, CounterId::CheckpointsTaken);
            hub.add(lane, CounterId::CheckpointBytes, bytes);
            hub.observe(
                lane,
                HistId::CHECKPOINT_NS,
                started.elapsed().as_nanos() as u64,
            );
        });
        Ok(())
    }

    /// Load this rank's latest checkpoint, if one exists — the front door
    /// to [`CheckpointStore::load`]. `Ok(None)` is a fresh start; a
    /// respawned rank uses `Some((step, data))` to resume from the last
    /// completed step.
    pub fn restore<T: Datatype>(&self, store: &CheckpointStore) -> Result<Option<(u64, Vec<T>)>> {
        store.load()
    }
}

impl Drop for Comm {
    fn drop(&mut self) {
        // Release this communicator's receive-side state (the mailbox's
        // per-(comm, sender) dedup high-water marks and any stray queued
        // envelopes), so worlds that split/dup/shrink in a loop don't
        // accumulate entries for communicators that no longer exist.
        self.fabric.prune_comm(self.world_rank(), self.comm_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::{ANY_SOURCE, ANY_TAG};
    use crate::world::World;

    #[test]
    fn ping_pong_one_pair() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[41i64], 1, 0).unwrap();
                let (v, st) = comm.recv_one::<i64>(1, 0).unwrap();
                assert_eq!(st.source, 1);
                v
            } else {
                let (v, _) = comm.recv_one::<i64>(0, 0).unwrap();
                comm.send(&[v + 1], 0, 0).unwrap();
                v
            }
        });
        assert_eq!(out, vec![42, 41]);
    }

    #[test]
    fn messages_do_not_overtake() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..100i32 {
                    comm.send_one(i, 1, 7).unwrap();
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| comm.recv_one::<i32>(0, 7).unwrap().0)
                    .collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn any_source_any_tag_receive_all() {
        let out = World::run(4, |comm| {
            if comm.rank() == 0 {
                let mut got = Vec::new();
                for _ in 0..3 {
                    let (v, st) = comm.recv_one::<u64>(ANY_SOURCE, ANY_TAG).unwrap();
                    assert_eq!(v, st.source as u64 * 10);
                    assert_eq!(st.tag, st.source as i32);
                    got.push(st.source);
                }
                got.sort_unstable();
                got
            } else {
                comm.send_one(comm.rank() as u64 * 10, 0, comm.rank() as i32)
                    .unwrap();
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![1, 2, 3]);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1i32, 2], 1, 0).unwrap();
                Ok(())
            } else {
                comm.recv::<f64>(0, 0).map(|_| ())
            }
        });
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn recv_from_finished_rank_reports_deadlock() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                Ok(Vec::new())
            } else {
                // Rank 0 sends nothing and exits; this must not hang.
                comm.recv::<i32>(0, 0).map(|(v, _)| v)
            }
        });
        assert!(matches!(&out[1], Err(Error::Deadlock(_))));
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        let out = World::run(1, |comm| comm.send(&[1i32], 5, 0));
        assert!(matches!(
            out[0],
            Err(Error::RankOutOfRange { rank: 5, size: 1 })
        ));
    }

    #[test]
    fn negative_user_tag_rejected() {
        let out = World::run(1, |comm| comm.send(&[1i32], 0, -3));
        assert!(matches!(out[0], Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn self_send_and_recv_works() {
        let out = World::run(1, |comm| {
            comm.send_one(99i32, 0, 4).unwrap();
            comm.recv_one::<i32>(0, 4).unwrap().0
        });
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn sendrecv_exchanges_between_neighbours() {
        let out = World::run(4, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let (got, _) = comm
                .sendrecv::<u64, u64>(&[comm.rank() as u64], right, 1, left, 1)
                .unwrap();
            got[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn iprobe_sees_pending_message() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[5i32, 6, 7], 1, 9).unwrap();
                0
            } else {
                // Wait for it to arrive.
                loop {
                    if let Some(st) = comm.iprobe(0, 9) {
                        assert_eq!(st.count, 3);
                        break;
                    }
                    std::thread::yield_now();
                }
                let (v, _) = comm.recv::<i32>(0, 9).unwrap();
                v.iter().sum::<i32>()
            }
        });
        assert_eq!(out[1], 18);
    }

    #[test]
    fn ssend_completes_once_matched() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.ssend(&[42i64], 1, 5).unwrap();
                "sent"
            } else {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let (v, _) = comm.recv_one::<i64>(0, 5).unwrap();
                assert_eq!(v, 42);
                "received"
            }
        });
        assert_eq!(out, vec!["sent", "received"]);
    }

    #[test]
    fn head_to_head_ssends_deadlock_like_real_mpi() {
        // The classic unsafe pattern: both ranks Ssend before receiving.
        // With synchronous sends this deadlocks; the detector reports it.
        let out = World::run(2, |comm| {
            let peer = 1 - comm.rank();
            let send = comm.ssend(&[comm.rank() as i64], peer, 1);
            match send {
                Err(e) => Err(e),
                Ok(()) => comm.recv_one::<i64>(peer, 1).map(|_| ()),
            }
        });
        assert!(
            out.iter().any(|r| matches!(r, Err(Error::Deadlock(_)))),
            "head-to-head ssend must be diagnosed: {out:?}"
        );
    }

    #[test]
    fn ssend_then_recv_ordering_is_safe_when_one_side_receives_first() {
        // The safe ordering: odd ranks receive first, even ranks ssend
        // first — the fix students learn.
        let out = World::run(4, |comm| {
            let peer = comm.rank() ^ 1;
            if comm.rank() % 2 == 0 {
                comm.ssend(&[comm.rank() as i64], peer, 2).unwrap();
                comm.recv_one::<i64>(peer, 2).unwrap().0
            } else {
                let v = comm.recv_one::<i64>(peer, 2).unwrap().0;
                comm.ssend(&[comm.rank() as i64], peer, 2).unwrap();
                v
            }
        });
        assert_eq!(out, vec![1, 0, 3, 2]);
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        // 6 ranks split into even/odd colors; key reverses the order.
        let out = World::run(6, |comm| {
            let color = (comm.rank() % 2) as i32;
            let key = -(comm.rank() as i32); // descending world rank
            let sub = comm.split(color, key).unwrap();
            (sub.rank(), sub.size(), sub.world_rank(), comm.rank())
        });
        // Evens: world ranks 4, 2, 0 in sub-rank order (key descending).
        assert_eq!(out[4].0, 0);
        assert_eq!(out[2].0, 1);
        assert_eq!(out[0].0, 2);
        // Odds: 5, 3, 1.
        assert_eq!(out[5].0, 0);
        assert_eq!(out[3].0, 1);
        assert_eq!(out[1].0, 2);
        assert!(out.iter().all(|&(_, size, _, _)| size == 3));
        assert!(out.iter().all(|&(_, _, w, r)| w == r));
    }

    #[test]
    fn collectives_work_on_sub_communicators() {
        use patternlets_core::reduce::ops;
        let out = World::run(6, |comm| {
            let color = (comm.rank() / 3) as i32; // {0,1,2} and {3,4,5}
            let sub = comm.split(color, comm.rank() as i32).unwrap();
            // Sum world ranks within each half.
            let sum = sub.allreduce(&[comm.rank() as i64], &ops::Sum).unwrap()[0];
            sub.barrier().unwrap();
            sum
        });
        assert_eq!(&out[..3], &[3, 3, 3], "0+1+2");
        assert_eq!(&out[3..], &[12, 12, 12], "3+4+5");
    }

    #[test]
    fn sub_communicator_point_to_point_uses_local_ranks() {
        let out = World::run(4, |comm| {
            let color = (comm.rank() % 2) as i32;
            let sub = comm.split(color, 0).unwrap();
            // Local rank 0 of each sub-comm sends to local rank 1.
            if sub.rank() == 0 {
                sub.send_one(comm.rank() as u64, 1, 5).unwrap();
                None
            } else {
                let (v, st) = sub.recv_one::<u64>(0, 5).unwrap();
                assert_eq!(st.source, 0, "status reports the LOCAL source rank");
                Some(v)
            }
        });
        // World rank 2 receives from world rank 0; 3 from 1.
        assert_eq!(out, vec![None, None, Some(0), Some(1)]);
    }

    #[test]
    fn messages_do_not_leak_across_communicators() {
        let out = World::run(2, |comm| {
            let dup = comm.dup().unwrap();
            if comm.rank() == 0 {
                comm.send_one(1i64, 1, 3).unwrap(); // on world
                dup.send_one(2i64, 1, 3).unwrap(); // on dup
                0
            } else {
                // Receive on dup FIRST: must get the dup message even
                // though the world message arrived earlier.
                let (v_dup, _) = dup.recv_one::<i64>(0, 3).unwrap();
                let (v_world, _) = comm.recv_one::<i64>(0, 3).unwrap();
                assert_eq!(v_dup, 2);
                assert_eq!(v_world, 1);
                v_dup + v_world
            }
        });
        assert_eq!(out[1], 3);
    }

    #[test]
    fn nested_splits() {
        let out = World::run(8, |comm| {
            let half = comm.split((comm.rank() / 4) as i32, 0).unwrap();
            let quarter = half.split((half.rank() / 2) as i32, 0).unwrap();
            (half.size(), quarter.size(), quarter.rank())
        });
        assert!(out.iter().all(|&(h, q, _)| h == 4 && q == 2));
        let zeros = out.iter().filter(|&&(_, _, r)| r == 0).count();
        assert_eq!(zeros, 4, "four quarter-comms, each with a rank 0");
    }

    #[test]
    fn recv_count_mismatch_via_recv_one() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[1i32, 2, 3], 1, 0).unwrap();
                Ok(0)
            } else {
                comm.recv_one::<i32>(0, 0).map(|(v, _)| v)
            }
        });
        assert!(matches!(
            out[1],
            Err(Error::CountMismatch {
                expected: 1,
                found: 3
            })
        ));
    }
}
