//! Receive selectors (`MPI_ANY_SOURCE`, `MPI_ANY_TAG`) and `MPI_Status`.

/// Which senders a receive will match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceSel {
    /// Match only this rank.
    Rank(usize),
    /// Match any sender — `MPI_ANY_SOURCE`.
    Any,
}

/// `MPI_ANY_SOURCE`.
pub const ANY_SOURCE: SourceSel = SourceSel::Any;

impl From<usize> for SourceSel {
    fn from(rank: usize) -> Self {
        SourceSel::Rank(rank)
    }
}

impl SourceSel {
    /// Does an envelope from `src` match?
    pub fn matches(self, src: usize) -> bool {
        match self {
            SourceSel::Rank(r) => r == src,
            SourceSel::Any => true,
        }
    }
}

/// Which tags a receive will match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match only this tag.
    Tag(i32),
    /// Match any tag — `MPI_ANY_TAG`. Only matches user (non-negative)
    /// tags, so collective traffic is never stolen.
    Any,
}

/// `MPI_ANY_TAG`.
pub const ANY_TAG: TagSel = TagSel::Any;

impl From<i32> for TagSel {
    fn from(tag: i32) -> Self {
        TagSel::Tag(tag)
    }
}

impl TagSel {
    /// Does an envelope with `tag` match?
    pub fn matches(self, tag: i32) -> bool {
        match self {
            TagSel::Tag(t) => t == tag,
            TagSel::Any => tag >= 0,
        }
    }
}

/// Delivery metadata returned by a receive — `MPI_Status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// The actual sender (useful after `ANY_SOURCE`).
    pub source: usize,
    /// The actual tag (useful after `ANY_TAG`).
    pub tag: i32,
    /// Number of elements received — `MPI_Get_count`.
    pub count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_matching() {
        assert!(SourceSel::Rank(2).matches(2));
        assert!(!SourceSel::Rank(2).matches(3));
        assert!(ANY_SOURCE.matches(0));
        assert!(ANY_SOURCE.matches(99));
        assert_eq!(SourceSel::from(4), SourceSel::Rank(4));
    }

    #[test]
    fn tag_matching() {
        assert!(TagSel::Tag(7).matches(7));
        assert!(!TagSel::Tag(7).matches(8));
        assert!(ANY_TAG.matches(0));
        assert!(ANY_TAG.matches(1000));
        // ANY_TAG never matches reserved (negative) collective tags.
        assert!(!ANY_TAG.matches(-5));
        // But an explicit negative tag can match (runtime internal use).
        assert!(TagSel::Tag(-5).matches(-5));
        assert_eq!(TagSel::from(3), TagSel::Tag(3));
    }
}
