//! Fault injection: chaos transport and a rank-failure model.
//!
//! A [`FaultPlan`] configured on [`crate::WorldBuilder`] perturbs the
//! transport underneath unmodified patternlets:
//!
//! * **delay** — each message sleeps a random time *in the sender's
//!   thread* before delivery. Per-sender program order is preserved, so
//!   MPI's non-overtaking guarantee survives arbitrary delays.
//! * **reorder** — a delivered message may be inserted *ahead of* queued
//!   messages from **other** senders (never its own earlier messages),
//!   modelling cross-sender network races that are legal under MPI.
//! * **drop** — a message transmission is lost with some probability; the
//!   sender retries after an exponentially-backed-off timeout. Lost acks
//!   are modelled by occasional duplicate deliveries; the receiving
//!   mailbox deduplicates by per-sender sequence number, so the
//!   application sees each message **exactly once**.
//! * **kill** — a rank dies after its k-th message operation: the rank's
//!   own operations fail with [`Error::RankFailed`], its `failed` flag is
//!   raised, and every peer operation that depends on it reports
//!   `RankFailed` (not `Deadlock`) instead of hanging.
//!
//! All randomness derives from one seed via per-rank
//! [`Xoshiro256StarStar`] streams: each sender draws its chaos decisions
//! in program order, so a plan's behaviour is reproducible regardless of
//! thread interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use patternlets_core::rng::{Rng, Xoshiro256StarStar};
use patternlets_core::{Error, OpContext, Result};

/// A seeded chaos/fault schedule for one world. Build with
/// [`FaultPlan::seeded`] and the chainable setters, then install via
/// [`crate::WorldBuilder::fault_plan`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    delay_up_to: Option<Duration>,
    reorder_probability: f64,
    drop_probability: f64,
    duplicate_probability: f64,
    kills: Vec<Kill>,
}

/// Kill rank `rank` when its operation counter reaches `after_ops`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Kill {
    rank: usize,
    after_ops: u64,
}

impl FaultPlan {
    /// An empty plan (no chaos) drawing all randomness from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_up_to: None,
            reorder_probability: 0.0,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            kills: Vec::new(),
        }
    }

    /// Delay each message by a uniform random time in `0..=max`, slept in
    /// the sender's thread (per-sender order is preserved).
    pub fn delay_up_to(mut self, max: Duration) -> Self {
        self.delay_up_to = Some(max);
        self
    }

    /// With probability `p`, deliver a message ahead of queued messages
    /// from other senders.
    pub fn reorder(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.reorder_probability = p;
        self
    }

    /// Lose each transmission with probability `p`; the sender retries
    /// with exponential backoff until one gets through.
    pub fn drop(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability in [0, 1)");
        self.drop_probability = p;
        self
    }

    /// With probability `p`, deliver an extra (duplicate) copy of a
    /// message, modelling a lost acknowledgement. The mailbox's
    /// per-sender dedup must swallow it.
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability in [0, 1]");
        self.duplicate_probability = p;
        self
    }

    /// Kill `rank` (world numbering) once it has performed `after_ops`
    /// message operations: its next operation fails with
    /// [`Error::RankFailed`] and its failed flag is raised. `after_ops ==
    /// 0` kills the rank on its very first operation.
    pub fn kill_rank_after(mut self, rank: usize, after_ops: u64) -> Self {
        self.kills.push(Kill { rank, after_ops });
        self
    }

    /// Does this plan ever drop transmissions (used to size retry
    /// budgets)?
    pub fn drops(&self) -> bool {
        self.drop_probability > 0.0
    }
}

/// Per-world runtime state for an installed [`FaultPlan`]. Public so
/// network backends (which host one rank's slice of a world) can run the
/// same seeded chaos and kill triggers the thread backend does.
pub struct FaultState {
    plan: FaultPlan,
    /// Per-rank operation counters, for kill triggers.
    op_counts: Vec<AtomicU64>,
    /// Per-rank chaos RNG streams: each sender draws in program order, so
    /// decisions are reproducible under any thread interleaving.
    rngs: Vec<Mutex<Xoshiro256StarStar>>,
}

/// What the chaos layer decided for one transmission.
pub struct ChaosDecision {
    /// Sleep this long in the sender thread before delivering.
    pub delay: Duration,
    /// Number of lost transmissions before the one that gets through
    /// (each adds a backed-off retry sleep).
    pub lost_transmissions: u32,
    /// Deliver ahead of this many queued messages from other senders.
    pub overtake: usize,
    /// Also deliver a duplicate copy (exercises receiver dedup).
    pub duplicate: bool,
}

impl FaultState {
    /// Runtime state for `plan` over a world of `np` ranks.
    pub fn new(plan: FaultPlan, np: usize) -> Self {
        FaultState {
            op_counts: (0..np).map(|_| AtomicU64::new(0)).collect(),
            rngs: (0..np)
                .map(|r| {
                    Mutex::new(Xoshiro256StarStar::seeded(
                        plan.seed ^ (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ))
                })
                .collect(),
            plan,
        }
    }

    /// Count one message operation by world rank `me`; returns the
    /// `RankFailed` error if the plan kills `me` at this point (or already
    /// has).
    pub fn record_op(&self, me: usize, op: &'static str) -> Result<()> {
        let count = self.op_counts[me].fetch_add(1, Ordering::SeqCst);
        for kill in &self.plan.kills {
            if kill.rank == me && count >= kill.after_ops {
                return Err(Error::RankFailed {
                    rank: me,
                    op: OpContext::new(op)
                        .detail(format!("killed by fault plan after {count} operations")),
                });
            }
        }
        Ok(())
    }

    /// Draw the chaos decisions for one transmission by `sender`.
    pub fn decide(&self, sender: usize) -> ChaosDecision {
        let mut rng = self.rngs[sender].lock();
        let delay = match self.plan.delay_up_to {
            Some(max) if max > Duration::ZERO => {
                Duration::from_nanos(rng.gen_range(max.as_nanos() as u64 + 1))
            }
            _ => Duration::ZERO,
        };
        let mut lost_transmissions = 0;
        while self.plan.drop_probability > 0.0
            && rng.gen_f64() < self.plan.drop_probability
            && lost_transmissions < 16
        {
            lost_transmissions += 1;
        }
        let overtake = if self.plan.reorder_probability > 0.0
            && rng.gen_f64() < self.plan.reorder_probability
        {
            1 + rng.gen_range(3) as usize
        } else {
            0
        };
        let duplicate = self.plan.duplicate_probability > 0.0
            && rng.gen_f64() < self.plan.duplicate_probability;
        ChaosDecision {
            delay,
            lost_transmissions,
            overtake,
            duplicate,
        }
    }
}

/// Exponential backoff for retransmission attempt `attempt` (0-based):
/// 100µs, 200µs, 400µs, … capped at 5ms.
pub(crate) fn retry_backoff(attempt: u32) -> Duration {
    let micros = 100u64 << attempt.min(6);
    Duration::from_micros(micros.min(5_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_decides_nothing() {
        let state = FaultState::new(FaultPlan::seeded(1), 2);
        for _ in 0..100 {
            let d = state.decide(0);
            assert_eq!(d.delay, Duration::ZERO);
            assert_eq!(d.lost_transmissions, 0);
            assert_eq!(d.overtake, 0);
            assert!(!d.duplicate);
        }
    }

    #[test]
    fn kill_triggers_at_threshold_and_stays_triggered() {
        let state = FaultState::new(FaultPlan::seeded(1).kill_rank_after(1, 2), 3);
        assert!(state.record_op(1, "send").is_ok());
        assert!(state.record_op(1, "send").is_ok());
        let err = state.record_op(1, "send").unwrap_err();
        assert!(matches!(err, Error::RankFailed { rank: 1, .. }));
        // Still dead afterwards.
        assert!(state.record_op(1, "recv").is_err());
        // Other ranks unaffected.
        for _ in 0..10 {
            assert!(state.record_op(0, "send").is_ok());
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let mk = || FaultState::new(FaultPlan::seeded(7).drop(0.3).reorder(0.5), 2);
        let (a, b) = (mk(), mk());
        for _ in 0..200 {
            let (da, db) = (a.decide(1), b.decide(1));
            assert_eq!(da.lost_transmissions, db.lost_transmissions);
            assert_eq!(da.overtake, db.overtake);
        }
    }

    #[test]
    fn different_ranks_get_different_streams() {
        let state = FaultState::new(FaultPlan::seeded(7).drop(0.5), 2);
        let a: Vec<u32> = (0..50)
            .map(|_| state.decide(0).lost_transmissions)
            .collect();
        let b: Vec<u32> = (0..50)
            .map(|_| state.decide(1).lost_transmissions)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn backoff_grows_then_caps() {
        assert_eq!(retry_backoff(0), Duration::from_micros(100));
        assert_eq!(retry_backoff(1), Duration::from_micros(200));
        assert!(retry_backoff(3) > retry_backoff(2));
        assert_eq!(retry_backoff(30), Duration::from_millis(5));
    }
}
