//! Worlds: spawning ranks and wiring their mailboxes together —
//! `MPI_Init` / `MPI_Finalize` and `mpirun -np N`.
//!
//! [`World::run(np, f)`](World::run) plays the role of
//! `mpirun -np <np> ./program`: it launches `np` rank threads, hands each an
//! isolated [`Comm`], runs `f` in every rank (single program, multiple
//! data), and joins them all, returning each rank's result in rank order.
//!
//! Ranks get simulated hostnames. With the default one rank per node, rank
//! `i` reports `node-0(i+1)` — matching the paper's Figure 6, where four
//! processes report `node-01 … node-04`. [`WorldBuilder::ranks_per_node`]
//! models fatter nodes (several ranks sharing a hostname), which the
//! heterogeneous patternlets use.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use patternlets_core::{Error, Result};
use patternlets_metrics::MetricsHub;
use patternlets_trace::Tracer;

use parking_lot::Mutex as PlMutex;

use crate::comm::Comm;
use crate::envelope::Envelope;
use crate::fabric::{AgreeKey, AgreeSlot, Fabric, ProvidedWorld, WorldSpec};
use crate::fault::{ChaosDecision, FaultPlan, FaultState};
use crate::mailbox::Mailbox;
use crate::status::{SourceSel, TagSel};

/// The default deadlock-detector poll interval: how long a blocked
/// receive waits between liveness re-checks. Configurable via
/// [`WorldBuilder::poll_interval`].
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Shared routing fabric for one world.
pub(crate) struct Transport {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) finished: Vec<AtomicBool>,
    /// Ranks that *failed* (killed by the fault plan, or panicked) rather
    /// than finishing normally. Peer operations that depend on a failed
    /// rank report [`Error::RankFailed`] instead of `Deadlock`.
    pub(crate) failed: Vec<AtomicBool>,
    pub(crate) names: Vec<String>,
    pub(crate) send_seqs: Vec<AtomicU64>,
    /// What each world rank is currently blocked receiving (None = not
    /// blocked). Basis of the waits-for deadlock detector.
    pub(crate) waits: Vec<PlMutex<Option<WaitRecord>>>,
    /// Bumped on every publish/clear of a wait record; used to confirm a
    /// deadlock verdict against a quiescent snapshot.
    pub(crate) wait_epochs: Vec<AtomicU64>,
    /// When tracing is on, every delivered message is recorded here.
    pub(crate) trace: Option<PlMutex<Vec<MsgEvent>>>,
    /// Structured event tracing ([`patternlets_trace`]): sends, receives,
    /// collective phases, and chaos-transport incidents, per world rank.
    /// `None` (the default) keeps the hot paths event-free.
    pub(crate) tracer: Option<Tracer>,
    /// Quantitative instruments ([`patternlets_metrics`]): msg/byte
    /// counters, wait counters, and latency histograms, per world rank.
    /// `None` (the default) keeps the hot paths instrument-free.
    pub(crate) metrics: Option<MetricsHub>,
    /// Bumped on every message delivery. A deadlock verdict is only valid
    /// if no delivery happened while it was being computed — otherwise a
    /// just-delivered message could wake a rank the fixpoint still counts
    /// as stuck.
    pub(crate) progress: AtomicU64,
    /// Installed fault plan state, if any.
    pub(crate) fault: Option<FaultState>,
    /// How long blocked receives sleep between liveness re-checks.
    pub(crate) poll_interval: Duration,
    /// Force every payload through the encode/decode wire path even
    /// though all ranks share this address space (benchmark baseline;
    /// see [`WorldBuilder::encoded_payloads`]).
    pub(crate) encoded_only: bool,
    /// Message-free agreement slots for `Comm::agree`/`Comm::shrink`
    /// (ULFM-style operations must work when messaging peers are dead, so
    /// they synchronise through shared runtime state instead).
    pub(crate) agreements: PlMutex<HashMap<AgreeKey, AgreeSlot>>,
    pub(crate) agree_cv: Condvar,
}

/// One observed message, for traffic tracing (teaching: count the
/// messages each collective algorithm really sends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgEvent {
    /// Sending world rank.
    pub from: usize,
    /// Receiving world rank.
    pub to: usize,
    /// Communicator the message travelled on.
    pub comm_id: u64,
    /// Message tag (negative = runtime-internal).
    pub tag: i32,
    /// Payload size in bytes.
    pub bytes: usize,
}

impl MsgEvent {
    /// Was this a user message (non-negative tag) rather than runtime
    /// (collective/ack) traffic?
    pub fn is_user(&self) -> bool {
        self.tag >= 0
    }
}

/// A blocked receive, as seen by the deadlock detector. Published to the
/// [`Fabric`] by every blocking receive; backends with a global view (the
/// in-process one) feed it to a waits-for fixpoint, others may ignore it.
#[derive(Clone)]
pub struct WaitRecord {
    /// Communicator the receive is posted on.
    pub comm_id: u64,
    /// The receive's source selector (communicator-local numbering).
    pub src: SourceSel,
    /// The receive's tag selector.
    pub tag: TagSel,
    /// World ranks whose future sends could satisfy this receive.
    pub world_sources: Vec<usize>,
    /// World ranks of the whole communicator the receive is posted on
    /// (the failure model fails collective receives when *any* member is
    /// dead, not just the awaited peer).
    pub world_group: Arc<Vec<usize>>,
}

impl Transport {
    #[allow(clippy::too_many_arguments)]
    fn new(
        np: usize,
        ranks_per_node: usize,
        traced: bool,
        tracer: Option<Tracer>,
        metrics: Option<MetricsHub>,
        fault: Option<FaultPlan>,
        poll_interval: Duration,
        encoded_only: bool,
    ) -> Self {
        // Each mailbox records dedup/depth/wait metrics on its owner's lane.
        let mailboxes = (0..np)
            .map(|r| match &metrics {
                Some(hub) => Mailbox::with_metrics(hub.clone(), r),
                None => Mailbox::new(),
            })
            .collect();
        Transport {
            encoded_only,
            trace: traced.then(|| PlMutex::new(Vec::new())),
            tracer,
            metrics,
            progress: AtomicU64::new(0),
            mailboxes,
            finished: (0..np).map(|_| AtomicBool::new(false)).collect(),
            failed: (0..np).map(|_| AtomicBool::new(false)).collect(),
            names: (0..np)
                .map(|r| format!("node-{:02}", r / ranks_per_node + 1))
                .collect(),
            send_seqs: (0..np).map(|_| AtomicU64::new(0)).collect(),
            waits: (0..np).map(|_| PlMutex::new(None)).collect(),
            wait_epochs: (0..np).map(|_| AtomicU64::new(0)).collect(),
            fault: fault.map(|plan| FaultState::new(plan, np)),
            poll_interval,
            agreements: PlMutex::new(HashMap::new()),
            agree_cv: Condvar::new(),
        }
    }

    /// Record a delivery in the traffic trace, if tracing is on.
    pub(crate) fn record_msg(&self, event: MsgEvent) {
        if let Some(trace) = &self.trace {
            trace.lock().push(event);
        }
    }

    /// Record that `world_rank` is blocked on `record`.
    pub(crate) fn publish_wait(&self, world_rank: usize, record: WaitRecord) {
        *self.waits[world_rank].lock() = Some(record);
        self.wait_epochs[world_rank].fetch_add(1, Ordering::SeqCst);
    }

    /// Record that `world_rank` is no longer blocked.
    pub(crate) fn clear_wait(&self, world_rank: usize) {
        *self.waits[world_rank].lock() = None;
        self.wait_epochs[world_rank].fetch_add(1, Ordering::SeqCst);
    }

    /// Waits-for deadlock detection: is `me` part of a set of ranks none
    /// of which can ever make progress?
    ///
    /// A rank is *stuck* if it has finished, or if it is blocked in a
    /// receive that (a) has no matching envelope queued and (b) can only
    /// be satisfied by stuck ranks. The fixpoint starts from "every
    /// finished or blocked-with-empty-queue rank is stuck" and repeatedly
    /// un-sticks ranks with a non-stuck potential sender. If `me` remains
    /// stuck, no future delivery can wake it.
    ///
    /// Concurrency: the verdict is only trusted when every rank's wait
    /// epoch is identical before and after the computation — i.e. nobody
    /// published, woke, or cleared a wait while we looked. Otherwise we
    /// report "no deadlock" and let the caller retry on its next timeout.
    pub(crate) fn deadlocked(&self, me: usize) -> Option<String> {
        let np = self.mailboxes.len();
        let progress_before = self.progress.load(Ordering::SeqCst);
        let epochs_before: Vec<u64> = self
            .wait_epochs
            .iter()
            .map(|e| e.load(Ordering::SeqCst))
            .collect();

        // Snapshot the wait records.
        let records: Vec<Option<WaitRecord>> =
            self.waits.iter().map(|w| w.lock().clone()).collect();

        // A wait the failure model fail-fasts is an *escape*, not a block:
        // its owner's own liveness check resolves it to `RankFailed` on
        // the next poll, after which the owner makes progress. Mirrors
        // the conditions in `recv_match`'s liveness closure exactly —
        // without this, a detector running in the window between a kill
        // and the blocked peer's next poll would see that peer as stuck
        // and misreport `Deadlock` where `RankFailed` is imminent.
        let failure_resolves = |rec: &WaitRecord| -> bool {
            if matches!(rec.tag, TagSel::Tag(t) if crate::envelope::is_collective_tag(t))
                && rec.world_group.iter().any(|&w| self.rank_failed(w))
            {
                return true;
            }
            match rec.src {
                SourceSel::Rank(_) => rec.world_sources.iter().any(|&w| self.rank_failed(w)),
                SourceSel::Any => {
                    rec.world_sources.iter().any(|&w| self.rank_failed(w))
                        && rec
                            .world_sources
                            .iter()
                            .all(|&w| self.rank_failed(w) || !self.rank_alive(w))
                }
            }
        };

        // Initial stuck set: finished, or blocked with no queued match.
        // The caller holds its OWN mailbox lock, so other mailboxes are
        // only try-probed: an unprobeable mailbox means its owner is
        // active right now, so we abort and retry on the next timeout
        // (this also rules out lock-order cycles between two detectors).
        let mut stuck: Vec<bool> = Vec::with_capacity(np);
        for (r, record) in records.iter().enumerate() {
            let s = if !self.rank_alive(r) {
                true
            } else if r == me {
                // The caller just scanned its queue and found no match.
                record.is_some()
            } else {
                match record {
                    None => false,                               // running
                    Some(rec) if failure_resolves(rec) => false, // about to error out
                    Some(rec) => {
                        match self.mailboxes[r].try_probe(rec.comm_id, rec.src, rec.tag) {
                            Some(has_match) => !has_match,
                            None => return None, // busy: verdict unavailable
                        }
                    }
                }
            };
            stuck.push(s);
        }

        // Un-stick any blocked rank with a live, non-stuck potential
        // sender (finished ranks stay stuck: they will never send again).
        loop {
            let mut changed = false;
            for r in 0..np {
                if !stuck[r] || !self.rank_alive(r) {
                    continue;
                }
                if let Some(rec) = &records[r] {
                    if rec.world_sources.iter().any(|&s| !stuck[s]) {
                        stuck[r] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        if !stuck[me] {
            return None;
        }
        // Confirm against a quiescent snapshot: no wait was posted,
        // matched, or cleared — and no message was delivered — while we
        // were looking.
        let epochs_after: Vec<u64> = self
            .wait_epochs
            .iter()
            .map(|e| e.load(Ordering::SeqCst))
            .collect();
        if epochs_before != epochs_after || self.progress.load(Ordering::SeqCst) != progress_before
        {
            return None;
        }
        // Render the stuck set for the diagnostic.
        let mut graph = String::new();
        for r in 0..np {
            if !stuck[r] {
                continue;
            }
            if !self.rank_alive(r) {
                graph.push_str(&format!("[world {r}: finished] "));
            } else if let Some(rec) = &records[r] {
                graph.push_str(&format!(
                    "[world {r}: blocked on {:?} from world {:?} (comm {:#x}, tag {:?})] ",
                    rec.src, rec.world_sources, rec.comm_id, rec.tag
                ));
            }
        }
        Some(graph.trim_end().to_string())
    }

    /// Is rank `r` still running?
    pub(crate) fn rank_alive(&self, r: usize) -> bool {
        !self.finished[r].load(Ordering::SeqCst)
    }

    /// Has rank `r` failed (fault-plan kill or panic)?
    pub(crate) fn rank_failed(&self, r: usize) -> bool {
        self.failed[r].load(Ordering::SeqCst)
    }

    /// Raise rank `r`'s failed flag and wake any agreement waiters (they
    /// must re-examine membership when a participant dies).
    pub(crate) fn mark_failed(&self, r: usize) {
        self.failed[r].store(true, Ordering::SeqCst);
        self.agree_cv.notify_all();
    }

    /// Count one message operation by `me` against the fault plan;
    /// the kill trigger marks `me` failed and returns `RankFailed`.
    pub(crate) fn fault_op(&self, me: usize, op: &'static str) -> Result<()> {
        if let Some(fault) = &self.fault {
            if let Err(e) = fault.record_op(me, op) {
                self.mark_failed(me);
                return Err(e);
            }
        }
        Ok(())
    }

    /// One blocking agreement round through shared runtime state (the
    /// in-process realisation of [`Fabric::agreement`]).
    pub(crate) fn agreement(
        &self,
        key: AgreeKey,
        me: usize,
        value: u64,
        group: &[usize],
    ) -> AgreeSlot {
        let mut slots = self.agreements.lock();
        slots.entry(key).or_default().insert(me, value);
        self.agree_cv.notify_all();
        loop {
            let slot = slots.get(&key).expect("slot inserted above");
            let done = group
                .iter()
                .all(|&w| slot.contains_key(&w) || self.rank_failed(w) || !self.rank_alive(w));
            if done {
                // Slots are left in the map until the world is torn down:
                // their number is bounded by the agreement calls made, and
                // removal would race against members still reading.
                return slot.clone();
            }
            // Contributions and failures both notify the condvar; the
            // timeout is a backstop against missed wake-ups.
            self.agree_cv.wait_for(&mut slots, self.poll_interval);
        }
    }
}

impl Fabric for Transport {
    fn np(&self) -> usize {
        self.mailboxes.len()
    }

    fn rank_name(&self, world_rank: usize) -> &str {
        &self.names[world_rank]
    }

    fn poll_interval(&self) -> Duration {
        self.poll_interval
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    fn metrics(&self) -> Option<&MetricsHub> {
        self.metrics.as_ref()
    }

    fn record_msg(&self, event: MsgEvent) {
        Transport::record_msg(self, event);
    }

    fn next_send_seq(&self, me: usize) -> u64 {
        self.send_seqs[me].fetch_add(1, Ordering::Relaxed)
    }

    fn fault_op(&self, me: usize, op: &'static str) -> Result<()> {
        Transport::fault_op(self, me, op)
    }

    fn chaos_decision(&self, me: usize) -> Option<ChaosDecision> {
        self.fault.as_ref().map(|fault| fault.decide(me))
    }

    fn shares_address_space(&self, _me: usize, _dest: usize) -> bool {
        // Every rank is a thread of this process, so all pairs qualify
        // for the shared in-process payload path — unless the world was
        // built with the encode-everything benchmark baseline.
        !self.encoded_only
    }

    fn inline_payloads(&self) -> bool {
        // Tiny payloads beat the `Arc` round-trip of the shared path
        // (two allocations per send) in either payload mode, so the
        // inline cutover applies regardless of `encoded_only`.
        true
    }

    fn rank_alive(&self, world_rank: usize) -> bool {
        Transport::rank_alive(self, world_rank)
    }

    fn rank_failed(&self, world_rank: usize) -> bool {
        Transport::rank_failed(self, world_rank)
    }

    fn mark_failed(&self, world_rank: usize) {
        Transport::mark_failed(self, world_rank);
    }

    fn finish(&self, me: usize) {
        self.finished[me].store(true, Ordering::SeqCst);
        self.agree_cv.notify_all();
    }

    fn deliver(
        &self,
        _me: usize,
        dest: usize,
        env: Envelope,
        overtake: usize,
        duplicate: bool,
    ) -> bool {
        // Order matters: bump progress BEFORE the delivery becomes
        // matchable, so any deadlock verdict computed across this delivery
        // sees the progress change and rejects itself.
        let mailbox = &self.mailboxes[dest];
        self.progress.fetch_add(1, Ordering::SeqCst);
        if duplicate {
            mailbox.deliver_displaced(env.clone(), overtake);
            // The second copy is swallowed by the receiver's dedup.
            !mailbox.deliver_displaced(env, 0)
        } else {
            mailbox.deliver_displaced(env, overtake);
            false
        }
    }

    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        &self.mailboxes[world_rank]
    }

    fn publish_wait(&self, me: usize, record: WaitRecord) {
        Transport::publish_wait(self, me, record);
    }

    fn clear_wait(&self, me: usize) {
        Transport::clear_wait(self, me);
    }

    fn deadlocked(&self, me: usize) -> Option<String> {
        Transport::deadlocked(self, me)
    }

    fn agreement(&self, key: AgreeKey, me: usize, value: u64, group: &[usize]) -> AgreeSlot {
        Transport::agreement(self, key, me, value, group)
    }

    fn prune_comm(&self, me: usize, comm_id: u64) {
        self.mailboxes[me].prune_comm(comm_id);
    }
}

/// World-creation ordinal for this process — see [`WorldSpec::epoch`].
/// Counts every provider-consulted world build (including thread
/// fallbacks and skips), so sibling processes running the same program
/// stay aligned on which world a rendezvous belongs to.
static WORLD_EPOCH: AtomicU64 = AtomicU64::new(0);

fn next_world_epoch() -> u64 {
    WORLD_EPOCH.fetch_add(1, Ordering::SeqCst)
}

/// Configures and launches a world of ranks.
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    np: usize,
    ranks_per_node: usize,
    traced: bool,
    tracer: Option<Tracer>,
    metrics: Option<MetricsHub>,
    fault: Option<FaultPlan>,
    poll_interval: Duration,
    encoded_only: bool,
}

impl WorldBuilder {
    /// A world of `np` ranks, one rank per simulated node.
    pub fn new(np: usize) -> Self {
        WorldBuilder {
            np,
            ranks_per_node: 1,
            traced: false,
            tracer: None,
            metrics: None,
            fault: None,
            poll_interval: DEFAULT_POLL_INTERVAL,
            encoded_only: false,
        }
    }

    /// When `true`, force every in-process payload through the full
    /// encode/decode wire path even though sender and receiver share an
    /// address space — the pre-zero-copy behaviour. Exists so benchmarks
    /// can measure the shared-payload fast path against the encoded
    /// baseline in the same build; semantics are identical either way.
    pub fn encoded_payloads(mut self, encoded_only: bool) -> Self {
        self.encoded_only = encoded_only;
        self
    }

    /// Attach a structured-event [`Tracer`]: every rank emits send/recv,
    /// collective-phase, and chaos-incident events on its world-rank lane.
    /// Drain the tracer after the run to inspect or export the stream.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attach a [`MetricsHub`]: every rank accumulates msg/byte counters,
    /// wait counters, and latency histograms on its world-rank lane.
    /// Snapshot the hub after the run (or during it, for live views).
    pub fn metrics(mut self, hub: MetricsHub) -> Self {
        self.metrics = Some(hub);
        self
    }

    /// Install a [`FaultPlan`]: chaos (delay/reorder/drop/duplicate) and
    /// rank kills are injected inside the transport, underneath unmodified
    /// patternlet code.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// How long a blocked receive sleeps between deadlock-detector
    /// liveness re-checks (default [`DEFAULT_POLL_INTERVAL`], 20 ms).
    /// Shorter intervals detect failures faster at the cost of more
    /// wake-ups; the interval does not bound message latency (deliveries
    /// wake receivers immediately).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        assert!(interval > Duration::ZERO, "poll interval must be positive");
        self.poll_interval = interval;
        self
    }

    /// Record every delivered message; retrieve the log with
    /// [`WorldBuilder::run_traced`].
    pub fn traced(mut self) -> Self {
        self.traced = true;
        self
    }

    /// Like [`WorldBuilder::run`], returning `(results, message_log)`.
    /// The log is in delivery order and includes runtime (collective)
    /// traffic, distinguishable via [`MsgEvent::is_user`].
    pub fn run_traced<R, F>(&self, f: F) -> Result<(Vec<R>, Vec<MsgEvent>)>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        let builder = WorldBuilder {
            traced: true,
            ..self.clone()
        };
        let (results, transport) = builder.run_inner(f)?;
        let trace = transport
            .trace
            .as_ref()
            .map(|t| t.lock().clone())
            .expect("tracing was enabled");
        Ok((results, trace))
    }

    /// Place `k` consecutive ranks on each simulated node (they share a
    /// hostname), modelling multicore cluster nodes.
    pub fn ranks_per_node(mut self, k: usize) -> Self {
        assert!(k > 0, "ranks_per_node must be positive");
        self.ranks_per_node = k;
        self
    }

    /// Launch the world: run `f` in every rank, return results in rank
    /// order. Like `mpirun`, all ranks execute the same program.
    ///
    /// When a process-wide [`FabricProvider`](crate::fabric::FabricProvider)
    /// is installed (multi-process launch under `pmrun`), the provider may
    /// take over transport duties: this process then runs *its own world
    /// rank only* over the provided [`Fabric`], and the returned vector
    /// holds that single rank's result (or nothing, if this process's rank
    /// is outside the world).
    pub fn run<R, F>(&self, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        if self.np == 0 {
            return Err(Error::InvalidConfig("world needs at least one rank".into()));
        }
        if let Some(provider) = crate::fabric::fabric_provider() {
            let spec = WorldSpec {
                np: self.np,
                ranks_per_node: self.ranks_per_node,
                fault: self.fault.clone(),
                poll_interval: self.poll_interval,
                tracer: self.tracer.clone(),
                metrics: self.metrics.clone(),
                epoch: next_world_epoch(),
            };
            if let Some(world) = provider(&spec)? {
                return self.run_provided(world, f);
            }
        }
        self.run_inner(f).map(|(results, _)| results)
    }

    /// Run this process's single rank of a provider-built world.
    fn run_provided<R, F>(&self, world: ProvidedWorld, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        let ProvidedWorld::Rank { rank, fabric } = world else {
            return Ok(Vec::new());
        };
        // Same contract as the thread backend's guard: announce finish
        // even if `f` panics (so peers see a failure, not a hang), and
        // mark the rank failed on panic so they see `RankFailed`.
        struct FinishGuard {
            fabric: Arc<dyn Fabric>,
            rank: usize,
        }
        impl Drop for FinishGuard {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.fabric.mark_failed(self.rank);
                }
                self.fabric.finish(self.rank);
            }
        }
        let _guard = FinishGuard {
            fabric: Arc::clone(&fabric),
            rank,
        };
        let comm = Comm::over_fabric(rank, fabric);
        Ok(vec![f(comm)])
    }

    fn run_inner<R, F>(&self, f: F) -> Result<(Vec<R>, Arc<Transport>)>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        if self.np == 0 {
            return Err(Error::InvalidConfig("world needs at least one rank".into()));
        }
        let transport = Arc::new(Transport::new(
            self.np,
            self.ranks_per_node,
            self.traced,
            self.tracer.clone(),
            self.metrics.clone(),
            self.fault.clone(),
            self.poll_interval,
            self.encoded_only,
        ));
        let results: Vec<Mutex<Option<R>>> = (0..self.np).map(|_| Mutex::new(None)).collect();

        // Traced worlds line every rank up at a start gate before the
        // body runs, so the recorded timelines begin together and spawn
        // order doesn't masquerade as blocked time in the analysis. The
        // multi-process fabrics do the same with an agreement round at
        // the end of rendezvous. A spin gate rather than `sync::Barrier`:
        // condvar wakeup latency (tens of µs) would stagger the release
        // by more than an in-process message takes to deliver, hiding
        // real message edges from the critical path.
        let start_gate = (self.traced || self.tracer.is_some())
            .then(|| std::sync::atomic::AtomicUsize::new(0));
        let np = self.np;

        std::thread::scope(|scope| {
            for (rank, slot) in results.iter().enumerate() {
                let transport = Arc::clone(&transport);
                let f = &f;
                let start_gate = &start_gate;
                scope.spawn(move || {
                    // Mark the rank finished even if `f` panics, so peers
                    // blocked in recv() report the failure instead of
                    // hanging while the panic propagates. A panicking rank
                    // is additionally marked *failed*, so peers see
                    // `RankFailed` rather than `Deadlock`.
                    struct FinishGuard<'a> {
                        transport: &'a Transport,
                        rank: usize,
                    }
                    impl Drop for FinishGuard<'_> {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                self.transport.mark_failed(self.rank);
                            }
                            self.transport.finished[self.rank].store(true, Ordering::SeqCst);
                            self.transport.agree_cv.notify_all();
                        }
                    }
                    let _guard = FinishGuard {
                        transport: &transport,
                        rank,
                    };
                    let comm = Comm::over_fabric(rank, Arc::clone(&transport) as Arc<dyn Fabric>);
                    if let Some(gate) = start_gate {
                        gate.fetch_add(1, Ordering::SeqCst);
                        let mut spins = 0u32;
                        while gate.load(Ordering::SeqCst) < np {
                            spins += 1;
                            if spins % 1024 == 0 {
                                // More ranks than cores must not livelock
                                // the unarrived ones off the CPU.
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                    let r = f(comm);
                    *slot.lock() = Some(r);
                });
            }
        });

        Ok((
            results
                .into_iter()
                .map(|m| m.into_inner().expect("every rank produced a result"))
                .collect(),
            transport,
        ))
    }
}

/// Entry point mirroring `mpirun`.
pub struct World;

impl World {
    /// `mpirun -np <np>`: run `f` in `np` ranks, panicking on configuration
    /// errors. Returns per-rank results in rank order.
    pub fn run<R, F>(np: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        WorldBuilder::new(np)
            .run(f)
            .expect("world configuration is valid")
    }

    /// A configurable builder.
    pub fn builder(np: usize) -> WorldBuilder {
        WorldBuilder::new(np)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids_and_size() {
        let out = World::run(4, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| comm.rank());
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn zero_rank_world_is_invalid() {
        let err = WorldBuilder::new(0).run(|_| ()).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)));
    }

    #[test]
    fn default_hostnames_match_paper_figure_6() {
        // One rank per node: process i runs on node-0(i+1).
        let out = World::run(4, |comm| comm.processor_name().to_string());
        assert_eq!(out, vec!["node-01", "node-02", "node-03", "node-04"]);
    }

    #[test]
    fn ranks_per_node_shares_hostnames() {
        let out = World::builder(6)
            .ranks_per_node(2)
            .run(|comm| comm.processor_name().to_string())
            .unwrap();
        assert_eq!(
            out,
            vec!["node-01", "node-01", "node-02", "node-02", "node-03", "node-03"]
        );
    }

    #[test]
    fn results_are_in_rank_order_regardless_of_finish_order() {
        let out = World::run(5, |comm| {
            // Later ranks finish first.
            std::thread::sleep(std::time::Duration::from_millis(
                (5 - comm.rank() as u64) * 2,
            ));
            comm.rank() * 100
        });
        assert_eq!(out, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        World::run(3, |comm| {
            if comm.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
