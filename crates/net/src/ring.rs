//! Replayable send ring — the sender half of the resume protocol.
//!
//! Every *sequenced* frame (see [`Frame::is_sequenced`]) written to a peer
//! is retained here, already encoded, until the peer acknowledges having
//! received it. Acknowledgements ride on the heartbeat: each `Ping { seen }`
//! carries the receiver's count of sequenced frames delivered so far, and
//! [`SendRing::ack`] drops everything below that count. When a connection
//! is re-established, the `Resume` handshake exchanges those same counts
//! and [`SendRing::resume`] rewinds the replay cursor so the unacknowledged
//! tail is transmitted again — no loss, no duplication, because the counts
//! are exact.
//!
//! Sequence numbers are *absolute* (0-based, monotonically increasing for
//! the lifetime of the peer link), so a resume after several reconnects
//! still lines up. The ring never renumbers.
//!
//! [`Frame::is_sequenced`]: crate::frame::Frame::is_sequenced

use std::collections::VecDeque;

use patternlets_core::{Error, Result};

/// Retained encoded frames awaiting acknowledgement, plus the replay
/// cursor for the current connection incarnation.
#[derive(Debug, Default)]
pub struct SendRing {
    /// Encoded records, `frames[0]` having absolute sequence `base`.
    frames: VecDeque<Vec<u8>>,
    /// Absolute sequence number of the oldest retained frame.
    base: u64,
    /// Absolute sequence number of the next frame to hand to the wire.
    /// Invariant: `base <= cursor <= next()`.
    cursor: u64,
}

impl SendRing {
    /// An empty ring starting at sequence 0.
    pub fn new() -> Self {
        SendRing::default()
    }

    /// Absolute sequence number the *next* pushed frame will get — equal
    /// to the count of sequenced frames ever pushed.
    pub fn next(&self) -> u64 {
        self.base + self.frames.len() as u64
    }

    /// Number of retained (unacknowledged) frames.
    pub fn retained(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames at or past the cursor, i.e. not yet written on the
    /// current connection.
    pub fn unsent(&self) -> usize {
        (self.next() - self.cursor) as usize
    }

    /// Retain one encoded record; returns its absolute sequence number.
    pub fn push(&mut self, record: Vec<u8>) -> u64 {
        let seq = self.next();
        self.frames.push_back(record);
        seq
    }

    /// Drop every frame with sequence `< seen` — the peer has confirmed
    /// delivery. A stale `seen` (below `base`) is a no-op; a `seen` above
    /// `next()` is clamped (the peer cannot have seen frames we never
    /// sent, but a clamp is safer than a panic on a byzantine ack).
    pub fn ack(&mut self, seen: u64) {
        let seen = seen.min(self.next());
        while self.base < seen {
            self.frames.pop_front();
            self.base += 1;
        }
        if self.cursor < self.base {
            self.cursor = self.base;
        }
    }

    /// Rewind the replay cursor to `peer_recv` — the count of sequenced
    /// frames the peer reports having delivered — after a reconnect.
    /// Everything at or past that count is retransmitted by subsequent
    /// [`next_batch`](Self::next_batch) calls. Returns the number of
    /// frames that will be replayed.
    ///
    /// Errs when the count is incoherent: below `base` means the peer
    /// missed frames we already discarded (an ack we acted on was wrong),
    /// above `next()` means the peer claims frames we never sent. Either
    /// way the link state is corrupt and the peer must be failed.
    pub fn resume(&mut self, peer_recv: u64) -> Result<u64> {
        if peer_recv < self.base || peer_recv > self.next() {
            return Err(Error::Codec(format!(
                "resume count {peer_recv} outside retained window [{}, {}]",
                self.base,
                self.next()
            )));
        }
        // Frames below peer_recv are implicitly acknowledged.
        self.ack(peer_recv);
        self.cursor = peer_recv;
        Ok(self.next() - peer_recv)
    }

    /// Clone up to `max` records starting at the cursor and advance the
    /// cursor past them. The clones are what goes on the wire; the ring
    /// keeps the originals until acknowledged.
    pub fn next_batch(&mut self, max: usize) -> Vec<Vec<u8>> {
        let start = (self.cursor - self.base) as usize;
        let take = self.frames.len().saturating_sub(start).min(max);
        let out: Vec<Vec<u8>> = self.frames.iter().skip(start).take(take).cloned().collect();
        self.cursor += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: u8) -> Vec<u8> {
        vec![n; 4]
    }

    #[test]
    fn sequences_are_absolute_and_monotone() {
        let mut r = SendRing::new();
        assert_eq!(r.push(rec(0)), 0);
        assert_eq!(r.push(rec(1)), 1);
        assert_eq!(r.next(), 2);
        assert_eq!(r.retained(), 2);
        r.ack(2);
        assert_eq!(r.retained(), 0);
        // Numbering continues after a full drain.
        assert_eq!(r.push(rec(2)), 2);
    }

    #[test]
    fn batches_advance_without_dropping() {
        let mut r = SendRing::new();
        for i in 0..5 {
            r.push(rec(i));
        }
        let a = r.next_batch(2);
        let b = r.next_batch(10);
        assert_eq!(a, vec![rec(0), rec(1)]);
        assert_eq!(b, vec![rec(2), rec(3), rec(4)]);
        assert!(r.next_batch(10).is_empty());
        // Nothing acknowledged yet: all five are still retained.
        assert_eq!(r.retained(), 5);
        r.ack(3);
        assert_eq!(r.retained(), 2);
    }

    #[test]
    fn resume_replays_the_unacknowledged_tail() {
        let mut r = SendRing::new();
        for i in 0..6 {
            r.push(rec(i));
        }
        assert_eq!(r.next_batch(6).len(), 6); // all "written" once
        r.ack(2); // peer confirmed 0 and 1
        let replayed = r.resume(4).unwrap(); // peer actually delivered 4
        assert_eq!(replayed, 2);
        assert_eq!(r.next_batch(10), vec![rec(4), rec(5)]);
    }

    #[test]
    fn resume_count_implies_acknowledgement() {
        let mut r = SendRing::new();
        for i in 0..4 {
            r.push(rec(i));
        }
        r.resume(3).unwrap();
        // Frames 0..3 were delivered, so only frame 3 remains retained.
        assert_eq!(r.retained(), 1);
        assert_eq!(r.unsent(), 1);
    }

    #[test]
    fn incoherent_resume_counts_are_rejected() {
        let mut r = SendRing::new();
        for i in 0..4 {
            r.push(rec(i));
        }
        r.ack(2);
        assert!(r.resume(1).is_err(), "below retained window");
        assert!(r.resume(5).is_err(), "claims unsent frames");
        assert!(r.resume(2).is_ok());
        assert!(r.resume(4).is_ok());
    }

    #[test]
    fn stale_and_byzantine_acks_are_harmless() {
        let mut r = SendRing::new();
        r.push(rec(0));
        r.push(rec(1));
        r.ack(1);
        r.ack(0); // stale: no-op
        assert_eq!(r.retained(), 1);
        r.ack(99); // byzantine: clamped to next()
        assert_eq!(r.retained(), 0);
        assert_eq!(r.next(), 2);
    }
}
