//! The shared-memory fabric: same-host ranks over mmap'd SPSC rings.
//!
//! The third `Fabric` provider (after in-process threads and the TCP
//! mesh): every directed peer pair `i → j` gets one file-backed,
//! memory-mapped segment holding a lock-free single-producer /
//! single-consumer byte ring ([`patternlets_core::spsc`]). Whole wire
//! frames — the *same* `[len][crc][body]` records the TCP codec ships,
//! CRC included — stream through the ring, so the unmodified
//! [`read_frame`] decoder runs on the consumer side and a corrupted
//! segment is caught exactly like a corrupted socket. The hot path is
//! two `memcpy`s and four atomic operations: no syscall, no kernel
//! round-trip, no frame re-encode.
//!
//! ## Rendezvous and co-location
//!
//! Ranks cannot see each other's placement, so the rendezvous table
//! carries it: a shm-capable rank registers its TCP listener address
//! with a `#shm:<host>:<dir>` suffix advertising its host identity and
//! the directory where it created its **inbound** segments (one per
//! peer, created *before* registering — so when the table comes back,
//! every producer's target file already exists). Each rank then makes
//! the same decision from the same table: if every rank advertised shm
//! on the same host, the world runs over rings; otherwise everyone
//! falls back to the TCP mesh built from the same table (the suffix is
//! stripped before dialing). `FabricMode::Shm` makes a fallback an
//! error instead; `FabricMode::Tcp` skips the advertisement entirely.
//!
//! ## Segment lifecycle
//!
//! The consumer creates, sizes, and initializes its inbound segment,
//! then advertises the directory. The producer maps the file after the
//! table arrives and immediately pushes a `Hello` frame; when the
//! consumer reads it, it **unlinks** the file — both mappings survive
//! an unlink, so from that point the ring is an anonymous shared page
//! range that vanishes with the last process. A SIGKILL'd producer
//! never sends `Hello`, so its files linger until the launcher sweeps
//! the per-job directory (`pmrun` removes it at exit).
//!
//! ## Liveness without EOF
//!
//! Shared memory has no connection to lose: a SIGKILL'd peer leaves its
//! rings exactly as they were. Liveness is therefore purely heartbeat:
//! every rank pushes `Ping` frames on a cadence and declares a peer
//! failed after [`SHM_PEER_TIMEOUT`] of silence — there is no reconnect
//! machinery because there is nothing to reconnect, and no resume
//! protocol because ring bytes are never lost in flight. Control
//! traffic (`Hello`/`Finish`/`Failed`/`Agree`) rides the same rings as
//! envelopes, so the ULFM-style agree/shrink semantics are identical to
//! the TCP provider's. A clean exit closes the outbound rings after a
//! `Finish` frame; the data already written survives in the consumer's
//! mapping even if this process exits immediately after.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use patternlets_core::spsc::{self, Consumer, Producer, SpscRing};
use patternlets_core::{Error, Result};
use patternlets_metrics::{CounterId, MetricsHub};
use patternlets_mp::envelope::{Envelope, Payload};
use patternlets_mp::fabric::{AgreeKey, AgreeSlot, Fabric, WorldSpec};
use patternlets_mp::fault::{ChaosDecision, FaultState};
use patternlets_mp::mailbox::Mailbox;
use patternlets_mp::world::{MsgEvent, WaitRecord};
use patternlets_trace::Tracer;

use crate::chaos::NetChaosPlan;
use crate::fabric::{intern_type_name, TcpFabric, HEARTBEAT_EVERY};
use crate::frame::{encode_frame, read_frame, Frame, CRC_MISMATCH};
use crate::rendezvous;

/// Data bytes per directed ring. Big enough that a collective round of
/// small frames never blocks; records larger than this stream through
/// the ring in chunks, exactly like a socket buffer.
pub const SHM_RING_CAPACITY: usize = 1 << 20;

/// A peer silent this long is declared failed. Much tighter than the
/// TCP provider's timeout: there is no EOF to detect a death early and
/// no reconnect round to serve, so the heartbeat *is* the detector.
pub const SHM_PEER_TIMEOUT: Duration = Duration::from_secs(2);

/// A peer that has never delivered a frame gets this long (from this
/// rank's own establish) before its silence counts as failure: the
/// peer's establishment — mapping `np` segments, pushing its Hello —
/// can lag well past one [`SHM_PEER_TIMEOUT`] on a loaded host, and
/// declaring it dead before it ever speaks is a false verdict.
pub const SHM_ESTABLISH_GRACE: Duration = Duration::from_secs(10);

/// `last_heard` sentinel: no frame from this peer yet.
const NEVER_HEARD: u64 = u64::MAX;

// ---------------------------------------------------------------------------
// Raw mmap (no libc in the vendored dependency set)
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::fs::File;
    use std::os::fd::AsRawFd;

    const SYS_MMAP: u64 = 9;
    const SYS_MUNMAP: u64 = 11;
    const PROT_READ: u64 = 1;
    const PROT_WRITE: u64 = 2;
    const MAP_SHARED: u64 = 1;

    /// Map `len` bytes of `file` shared read-write.
    pub fn mmap_shared(file: &File, len: usize) -> std::result::Result<*mut u8, String> {
        let fd = file.as_raw_fd() as u64;
        let ret: i64;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MMAP => ret,
                in("rdi") 0u64,
                in("rsi") len as u64,
                in("rdx") PROT_READ | PROT_WRITE,
                in("r10") MAP_SHARED,
                in("r8") fd,
                in("r9") 0u64,
                out("rcx") _,
                out("r11") _,
                options(nostack)
            );
        }
        // Errors come back as -errno in the page-aligned negative range.
        if (-4095..0).contains(&ret) {
            Err(format!("mmap failed: errno {}", -ret))
        } else {
            Ok(ret as *mut u8)
        }
    }

    pub fn munmap(ptr: *mut u8, len: usize) {
        unsafe {
            let mut _ret: i64;
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_MUNMAP => _ret,
                in("rdi") ptr as u64,
                in("rsi") len as u64,
                out("rcx") _,
                out("r11") _,
                options(nostack)
            );
        }
    }

    pub const SUPPORTED: bool = true;
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    use std::fs::File;

    pub fn mmap_shared(_file: &File, _len: usize) -> std::result::Result<*mut u8, String> {
        Err("shared-memory mappings are not supported on this platform".to_string())
    }

    pub fn munmap(_ptr: *mut u8, _len: usize) {}

    pub const SUPPORTED: bool = true; // resolved at runtime by mmap_shared
}

/// Whether this build can even attempt the shm fast path.
pub fn shm_supported() -> bool {
    sys::SUPPORTED && cfg!(all(target_os = "linux", target_arch = "x86_64"))
}

/// One file-backed shared mapping; unmapped on drop. The file descriptor
/// is closed as soon as the mapping exists (mappings outlive both their
/// fd and the directory entry).
struct Segment {
    ptr: *mut u8,
    len: usize,
}

unsafe impl Send for Segment {}
unsafe impl Sync for Segment {}

impl Segment {
    /// Create (or truncate) `path` at `len` bytes and map it.
    fn create(path: &Path, len: usize) -> Result<Segment> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::Codec(format!("create segment {}: {e}", path.display())))?;
        file.set_len(len as u64)
            .map_err(|e| Error::Codec(format!("size segment {}: {e}", path.display())))?;
        let ptr = sys::mmap_shared(&file, len)
            .map_err(|e| Error::Codec(format!("map segment {}: {e}", path.display())))?;
        Ok(Segment { ptr, len })
    }

    /// Map an existing segment file whole.
    fn open(path: &Path) -> Result<Segment> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| Error::Codec(format!("open segment {}: {e}", path.display())))?;
        let len = file
            .metadata()
            .map_err(|e| Error::Codec(format!("stat segment {}: {e}", path.display())))?
            .len() as usize;
        let ptr = sys::mmap_shared(&file, len)
            .map_err(|e| Error::Codec(format!("map segment {}: {e}", path.display())))?;
        Ok(Segment { ptr, len })
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        sys::munmap(self.ptr, self.len);
    }
}

// ---------------------------------------------------------------------------
// Placement identity and address advertisement
// ---------------------------------------------------------------------------

/// This machine's identity for co-location decisions: the
/// `PMRUN_HOST_ID` override if set (tests and the CI fallback check use
/// it to simulate a second host), else the kernel hostname, else
/// `"localhost"`.
pub fn host_id() -> String {
    if let Ok(id) = std::env::var("PMRUN_HOST_ID") {
        if !id.is_empty() {
            return id;
        }
    }
    hostname()
}

/// Best-effort machine hostname (also the worker host label in
/// `pmserve`'s `GET /workers`).
pub fn hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return h;
        }
    }
    if let Ok(h) = std::fs::read_to_string("/proc/sys/kernel/hostname") {
        let h = h.trim();
        if !h.is_empty() {
            return h.to_string();
        }
    }
    "localhost".to_string()
}

/// A rank's shm advertisement, parsed out of its rendezvous address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShmAd<'a> {
    /// Host identity the rank registered from.
    pub host: &'a str,
    /// Directory holding the rank's inbound segments.
    pub dir: &'a str,
}

/// Split a rendezvous table address into its dialable TCP part and the
/// optional shm advertisement (`"<addr>#shm:<host>:<dir>"`).
pub fn split_addr(addr: &str) -> (&str, Option<ShmAd<'_>>) {
    match addr.split_once("#shm:") {
        None => (addr, None),
        Some((tcp, rest)) => match rest.split_once(':') {
            // The dir may itself contain ':'; only the host is split off.
            Some((host, dir)) if !host.is_empty() && !dir.is_empty() => {
                (tcp, Some(ShmAd { host, dir }))
            }
            _ => (tcp, None),
        },
    }
}

/// The dialable TCP part of a (possibly shm-suffixed) table address.
pub fn tcp_part(addr: &str) -> &str {
    split_addr(addr).0
}

/// The segment file for ring `from → to` of world `epoch`, under the
/// *consumer's* advertised directory.
fn segment_path(dir: &Path, epoch: u64, from: usize, to: usize) -> PathBuf {
    dir.join(format!("e{epoch}-r{from}-to-r{to}.ring"))
}

/// Which transport `provide` should establish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricMode {
    /// Shared memory when every rank is co-located (and the wire-chaos
    /// injector is unarmed — chaos exercises TCP machinery shm does not
    /// have); TCP otherwise.
    #[default]
    Auto,
    /// Always the TCP mesh.
    Tcp,
    /// Shared memory or an error — never a silent fallback.
    Shm,
}

impl FabricMode {
    /// Parse a `--fabric` / `PMRUN_FABRIC` value.
    pub fn parse(s: &str) -> Option<FabricMode> {
        match s {
            "auto" => Some(FabricMode::Auto),
            "tcp" => Some(FabricMode::Tcp),
            "shm" => Some(FabricMode::Shm),
            _ => None,
        }
    }

    /// The canonical flag spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FabricMode::Auto => "auto",
            FabricMode::Tcp => "tcp",
            FabricMode::Shm => "shm",
        }
    }
}

/// Decide from a full rendezvous table whether this world can run over
/// shared memory: every rank must have advertised shm from the same
/// host. Pure so the fallback logic is unit-testable; every rank feeds
/// it the same table, so every rank reaches the same verdict.
pub fn all_colocated(table: &[String]) -> bool {
    let mut host: Option<&str> = None;
    for addr in table {
        match split_addr(addr).1 {
            None => return false,
            Some(ad) => match host {
                None => host = Some(ad.host),
                Some(h) if h == ad.host => {}
                Some(_) => return false,
            },
        }
    }
    !table.is_empty()
}

// ---------------------------------------------------------------------------
// The fabric
// ---------------------------------------------------------------------------

/// One rank's outbound ring to a peer, behind a mutex because both the
/// application thread (envelopes, agreement) and the heartbeat thread
/// push to it. The blocking push aborts when the peer is declared dead
/// or finished, so a full ring to a SIGKILL'd peer cannot wedge a send.
struct ShmPeer {
    producer: Mutex<Producer>,
}

struct Inner {
    me: usize,
    np: usize,
    names: Vec<String>,
    poll_interval: Duration,
    tracer: Option<Tracer>,
    metrics: Option<MetricsHub>,
    fault: Option<FaultState>,
    /// This process's rank's mailbox — the only one a `Comm` here reads.
    mailbox: Mailbox,
    send_seq: AtomicU64,
    finished: Vec<AtomicBool>,
    failed: Vec<AtomicBool>,
    /// Outbound rings, indexed by peer world rank (`None` at `me`).
    peers: Vec<Option<ShmPeer>>,
    /// Inbound segment files, unlinked when the producer's `Hello`
    /// confirms it has mapped them (slots are taken as that happens).
    inbound_paths: Mutex<Vec<Option<PathBuf>>>,
    /// Milliseconds (since `start`) each peer was last heard from.
    last_heard: Vec<AtomicU64>,
    start: Instant,
    agreements: Mutex<HashMap<AgreeKey, AgreeSlot>>,
    agree_cv: Condvar,
    /// Raised by `finish`/`sever`: the heartbeat stops and blocked
    /// pushes abort.
    closing: AtomicBool,
    /// Raised with `closing`: reader threads return EOF at their next
    /// park-timeout check even though dead peers never close their rings.
    stop_readers: Arc<AtomicBool>,
}

impl Inner {
    fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Push one encoded record into a peer's ring. `false` when the peer
    /// is already failed/finished or became so while the ring was full —
    /// the shm analogue of a terminal link.
    fn write_to(&self, peer: usize, record: &[u8]) -> bool {
        let Some(shm_peer) = &self.peers[peer] else {
            return true;
        };
        if self.failed[peer].load(Ordering::SeqCst) || self.finished[peer].load(Ordering::SeqCst) {
            return false;
        }
        let mut producer = shm_peer.producer.lock();
        let ok = producer
            .push_all(record, || {
                self.failed[peer].load(Ordering::SeqCst)
                    || self.finished[peer].load(Ordering::SeqCst)
            })
            .is_ok();
        if let Some(hub) = &self.metrics {
            let (spins, parks) = producer.take_stats();
            let (spin_waits, park_waits) = producer.take_wait_stats();
            if ok {
                hub.incr(peer, CounterId::ShmSends);
            }
            if spins > 0 {
                hub.add(self.me, CounterId::ShmFullSpins, spins);
            }
            if parks > 0 {
                hub.add(self.me, CounterId::ShmDoorbellParks, parks);
            }
            if spin_waits > 0 {
                hub.add(self.me, CounterId::SpscSpinWaits, spin_waits);
            }
            if park_waits > 0 {
                hub.add(self.me, CounterId::SpscParkWaits, park_waits);
            }
        }
        ok
    }

    /// Send `frame` to every peer; peers whose ring rejects it (already
    /// failed/finished) need no further verdict — `write_to` only fails
    /// for peers that already have one.
    fn broadcast(&self, frame: &Frame) {
        let record = encode_frame(frame);
        for peer in 0..self.np {
            if peer == self.me || self.peers[peer].is_none() {
                continue;
            }
            let _ = self.write_to(peer, &record);
        }
    }

    /// Record a failure verdict locally and wake everything that must
    /// re-examine membership. Like the TCP provider, verdicts are not
    /// gossiped: every co-located process runs the same heartbeat clock
    /// and reaches the same verdict within one interval.
    fn note_failed(&self, rank: usize) {
        if self.failed[rank].swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(hub) = &self.metrics {
            hub.incr(rank, CounterId::NetRankFailures);
        }
        let _lock = self.agreements.lock();
        self.agree_cv.notify_all();
    }

    /// Unlink peer `peer`'s inbound segment (its `Hello` confirmed the
    /// mapping exists on both sides; the directory entry is now noise).
    fn unlink_inbound(&self, peer: usize) {
        let path = self.inbound_paths.lock()[peer].take();
        if let Some(path) = path {
            let _ = std::fs::remove_file(path);
        }
    }

    fn handle_frame(&self, peer: usize, frame: Frame) {
        self.last_heard[peer].store(self.elapsed_ms(), Ordering::Relaxed);
        match frame {
            Frame::Env {
                comm_id,
                src,
                tag,
                type_name,
                count,
                seq,
                needs_ack,
                overtake,
                payload,
            } => {
                let env = Envelope {
                    comm_id,
                    src: src as usize,
                    tag,
                    type_name: intern_type_name(&type_name),
                    count: count as usize,
                    payload: Payload::Bytes(bytes::Bytes::from(payload)),
                    seq,
                    needs_ack,
                };
                self.mailbox.deliver_displaced(env, overtake as usize);
            }
            Frame::Hello { .. } => self.unlink_inbound(peer),
            Frame::Finish { rank } => {
                let rank = rank as usize;
                if rank < self.np {
                    self.finished[rank].store(true, Ordering::SeqCst);
                    let _lock = self.agreements.lock();
                    self.agree_cv.notify_all();
                }
            }
            Frame::Failed { rank } => {
                let rank = rank as usize;
                if rank < self.np {
                    self.note_failed(rank);
                }
            }
            Frame::Agree {
                comm_id,
                kind,
                seq,
                rank,
                value,
            } => {
                let mut slots = self.agreements.lock();
                slots
                    .entry((comm_id, kind, seq))
                    .or_default()
                    .insert(rank as usize, value);
                self.agree_cv.notify_all();
            }
            // Pings carry liveness only (no send ring to prune: nothing
            // is ever replayed); everything else has no business on a
            // ring and is ignored.
            _ => {}
        }
    }

    /// One inbound ring's read side: the unmodified frame decoder over
    /// the ring's blocking `Read`. EOF means the producer closed after
    /// `Finish` (clean) or our stop flag fired (teardown / peer declared
    /// dead); a decode error means the segment itself is damaged, which
    /// — like a CRC reject on a socket — fails the peer, except there is
    /// no resume to heal it.
    fn reader_loop(&self, peer: usize, mut consumer: Consumer) {
        loop {
            match read_frame(&mut consumer) {
                Ok(Some(frame)) => {
                    self.handle_frame(peer, frame);
                    if let Some(hub) = &self.metrics {
                        let (spins, parks) = consumer.take_stats();
                        let (spin_waits, park_waits) = consumer.take_wait_stats();
                        if spins > 0 {
                            hub.add(self.me, CounterId::ShmFullSpins, spins);
                        }
                        if parks > 0 {
                            hub.add(self.me, CounterId::ShmDoorbellParks, parks);
                        }
                        if spin_waits > 0 {
                            hub.add(self.me, CounterId::SpscSpinWaits, spin_waits);
                        }
                        if park_waits > 0 {
                            hub.add(self.me, CounterId::SpscParkWaits, park_waits);
                        }
                    }
                }
                Ok(None) => {
                    // Clean EOF without a Finish frame would mean the
                    // producer closed its ring mid-protocol; only the
                    // stop flag (teardown) excuses it.
                    if !self.finished[peer].load(Ordering::SeqCst)
                        && !self.closing.load(Ordering::SeqCst)
                        && !self.failed[peer].load(Ordering::SeqCst)
                    {
                        self.note_failed(peer);
                    }
                    return;
                }
                Err(e) => {
                    if e.to_string().contains(CRC_MISMATCH) {
                        if let Some(hub) = &self.metrics {
                            hub.incr(self.me, CounterId::NetCrcRejects);
                        }
                    }
                    if !self.closing.load(Ordering::SeqCst) {
                        self.note_failed(peer);
                    }
                    return;
                }
            }
        }
    }

    /// Ping every live peer on a cadence and declare the silent ones
    /// failed. No probe step: there is no connection to cut and redial,
    /// so silence past the timeout *is* the verdict.
    fn heartbeat_loop(&self) {
        loop {
            std::thread::sleep(HEARTBEAT_EVERY);
            if self.closing.load(Ordering::SeqCst) {
                return;
            }
            let now = self.elapsed_ms();
            let ping = encode_frame(&Frame::Ping { seen: 0 });
            let mut dead = Vec::new();
            for peer in 0..self.np {
                if peer == self.me
                    || self.peers[peer].is_none()
                    || self.finished[peer].load(Ordering::SeqCst)
                    || self.failed[peer].load(Ordering::SeqCst)
                {
                    continue;
                }
                if self.write_to(peer, &ping) {
                    if let Some(hub) = &self.metrics {
                        hub.incr(self.me, CounterId::NetHeartbeats);
                    }
                }
                let heard = self.last_heard[peer].load(Ordering::Relaxed);
                let timed_out = if heard == NEVER_HEARD {
                    // Not a word yet: measure from our own establish,
                    // with the longer grace — the peer may still be
                    // mapping segments.
                    now > SHM_ESTABLISH_GRACE.as_millis() as u64
                } else {
                    now.saturating_sub(heard) > SHM_PEER_TIMEOUT.as_millis() as u64
                };
                if timed_out {
                    dead.push(peer);
                }
            }
            for peer in dead {
                if !self.closing.load(Ordering::SeqCst) {
                    self.note_failed(peer);
                }
            }
        }
    }
}

/// One process's handle on a shared-memory world: implements [`Fabric`]
/// for the single rank this process hosts.
pub struct ShmFabric {
    inner: Arc<Inner>,
}

impl ShmFabric {
    /// Join world `spec` as rank `me` over shared memory, using an
    /// already-released rendezvous `table` whose entries all carry shm
    /// advertisements, and the inbound rings this rank created before
    /// registering (`inbound[peer]` = the ring peer writes into, paired
    /// with its file path for the post-`Hello` unlink).
    fn from_table(
        me: usize,
        spec: &WorldSpec,
        table: &[String],
        inbound: Vec<Option<(Arc<SpscRing>, PathBuf)>>,
    ) -> Result<ShmFabric> {
        let np = spec.np;
        // Map every peer's inbound segment as our outbound ring. The
        // files exist: each rank creates its inbound segments before
        // registering, and the table only exists once everyone has.
        let mut producers: Vec<Option<ShmPeer>> = Vec::with_capacity(np);
        for (peer, addr) in table.iter().enumerate() {
            if peer == me {
                producers.push(None);
                continue;
            }
            let (_, ad) = split_addr(addr);
            let ad = ad.ok_or_else(|| {
                Error::Codec(format!("rank {peer} has no shm advertisement in {addr}"))
            })?;
            let path = segment_path(Path::new(ad.dir), spec.epoch, me, peer);
            let segment = Segment::open(&path)?;
            let (ptr, len) = (segment.ptr, segment.len);
            let ring = unsafe { SpscRing::attach_at(ptr, len, Some(Box::new(segment))) }
                .map_err(|e| Error::Codec(format!("attach ring {}: {e}", path.display())))?;
            producers.push(Some(ShmPeer {
                producer: Mutex::new(ring.producer()),
            }));
        }

        let stop_readers = Arc::new(AtomicBool::new(false));
        let mut consumers: Vec<Option<Consumer>> = Vec::with_capacity(np);
        let mut inbound_paths: Vec<Option<PathBuf>> = Vec::with_capacity(np);
        for slot in inbound {
            match slot {
                Some((ring, path)) => {
                    let mut consumer = ring.consumer();
                    consumer.set_stop(Arc::clone(&stop_readers));
                    consumers.push(Some(consumer));
                    inbound_paths.push(Some(path));
                }
                None => {
                    consumers.push(None);
                    inbound_paths.push(None);
                }
            }
        }

        let inner = Arc::new(Inner {
            me,
            np,
            names: (0..np)
                .map(|r| format!("node-{:02}", r / spec.ranks_per_node + 1))
                .collect(),
            poll_interval: spec.poll_interval,
            tracer: spec.tracer.clone(),
            metrics: spec.metrics.clone(),
            fault: spec.fault.clone().map(|plan| FaultState::new(plan, np)),
            mailbox: match &spec.metrics {
                Some(hub) => Mailbox::with_metrics(hub.clone(), me),
                None => Mailbox::new(),
            },
            send_seq: AtomicU64::new(0),
            finished: (0..np).map(|_| AtomicBool::new(false)).collect(),
            failed: (0..np).map(|_| AtomicBool::new(false)).collect(),
            peers: producers,
            inbound_paths: Mutex::new(inbound_paths),
            last_heard: (0..np).map(|_| AtomicU64::new(NEVER_HEARD)).collect(),
            start: Instant::now(),
            agreements: Mutex::new(HashMap::new()),
            agree_cv: Condvar::new(),
            closing: AtomicBool::new(false),
            stop_readers,
        });
        for (peer, consumer) in consumers.into_iter().enumerate() {
            let Some(consumer) = consumer else { continue };
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("shm-reader-{peer}"))
                .spawn(move || inner.reader_loop(peer, consumer))
                .map_err(|e| Error::Codec(format!("spawn shm reader: {e}")))?;
        }
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("shm-heartbeat".into())
                .spawn(move || inner.heartbeat_loop())
                .map_err(|e| Error::Codec(format!("spawn shm heartbeat: {e}")))?;
        }
        // Announce: the Hello confirms this producer's mapping, letting
        // each consumer unlink the segment file behind it.
        inner.broadcast(&Frame::Hello {
            epoch: spec.epoch,
            rank: me as u64,
        });
        Ok(ShmFabric { inner })
    }

    /// Abruptly stop all shm activity without announcing Finish or
    /// closing the outbound rings — what a SIGKILL'd process looks like
    /// from the outside (peers must detect it by heartbeat silence).
    /// Test/diagnostic aid, the shm analogue of `TcpFabric::sever`.
    pub fn sever(&self) {
        self.inner.closing.store(true, Ordering::SeqCst);
        self.inner.stop_readers.store(true, Ordering::SeqCst);
    }
}

impl Fabric for ShmFabric {
    fn np(&self) -> usize {
        self.inner.np
    }

    fn rank_name(&self, world_rank: usize) -> &str {
        &self.inner.names[world_rank]
    }

    fn poll_interval(&self) -> Duration {
        self.inner.poll_interval
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.inner.tracer.as_ref()
    }

    fn metrics(&self) -> Option<&MetricsHub> {
        self.inner.metrics.as_ref()
    }

    fn record_msg(&self, _event: MsgEvent) {
        // As on TCP: the legacy message log backs `run_traced`, pinned to
        // the thread backend.
    }

    fn next_send_seq(&self, _me: usize) -> u64 {
        self.inner.send_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn fault_op(&self, me: usize, op: &'static str) -> Result<()> {
        if let Some(fault) = &self.inner.fault {
            if let Err(e) = fault.record_op(me, op) {
                self.mark_failed(me);
                return Err(e);
            }
        }
        Ok(())
    }

    fn chaos_decision(&self, me: usize) -> Option<ChaosDecision> {
        self.inner.fault.as_ref().map(|fault| fault.decide(me))
    }

    fn shares_address_space(&self, me: usize, dest: usize) -> bool {
        // Peers share *memory* but not an address space: payload Arcs
        // cannot cross, so only self-sends stay in-process.
        me == dest
    }

    fn inline_payloads(&self) -> bool {
        true
    }

    fn rank_alive(&self, world_rank: usize) -> bool {
        !self.inner.finished[world_rank].load(Ordering::SeqCst)
            && !self.inner.failed[world_rank].load(Ordering::SeqCst)
    }

    fn rank_failed(&self, world_rank: usize) -> bool {
        self.inner.failed[world_rank].load(Ordering::SeqCst)
    }

    fn mark_failed(&self, world_rank: usize) {
        let first_verdict = !self.inner.failed[world_rank].swap(true, Ordering::SeqCst);
        {
            let _lock = self.inner.agreements.lock();
            self.inner.agree_cv.notify_all();
        }
        if world_rank == self.inner.me && first_verdict {
            self.inner.broadcast(&Frame::Failed {
                rank: world_rank as u64,
            });
        }
    }

    fn finish(&self, me: usize) {
        self.inner.finished[me].store(true, Ordering::SeqCst);
        {
            let _lock = self.inner.agreements.lock();
            self.inner.agree_cv.notify_all();
        }
        self.inner.broadcast(&Frame::Finish { rank: me as u64 });
        // No drain budget: a completed `push_all` *is* delivery — the
        // bytes sit in the consumer's own mapping, which survives this
        // process arbitrarily outliving or predeceasing it. Close the
        // outbound rings (peers read Finish, then EOF) and stop our own
        // readers; anything peers send after our Finish is droppable.
        self.inner.closing.store(true, Ordering::SeqCst);
        for peer in self.inner.peers.iter().flatten() {
            peer.producer.lock().close();
        }
        self.inner.stop_readers.store(true, Ordering::SeqCst);
        // Inbound segments whose producer never confirmed its mapping
        // (a peer that died before Hello) would leak; sweep them now.
        for peer in 0..self.inner.np {
            if self.inner.failed[peer].load(Ordering::SeqCst) {
                self.inner.unlink_inbound(peer);
            }
        }
    }

    fn deliver(
        &self,
        _me: usize,
        dest: usize,
        env: Envelope,
        overtake: usize,
        duplicate: bool,
    ) -> bool {
        if dest == self.inner.me {
            let mailbox = &self.inner.mailbox;
            if duplicate {
                mailbox.deliver_displaced(env.clone(), overtake);
                return !mailbox.deliver_displaced(env, 0);
            }
            mailbox.deliver_displaced(env, overtake);
            return false;
        }
        let record = encode_frame(&Frame::Env {
            comm_id: env.comm_id,
            src: env.src as u64,
            tag: env.tag,
            type_name: env.type_name.to_string(),
            count: env.count as u64,
            seq: env.seq,
            needs_ack: env.needs_ack,
            overtake: overtake as u32,
            payload: env.payload.to_wire().to_vec(),
        });
        let mut ok = self.inner.write_to(dest, &record);
        if ok && duplicate {
            // Transmit a second copy; the receiving mailbox dedups it.
            ok = self.inner.write_to(dest, &record);
        }
        if !ok && !self.inner.finished[dest].load(Ordering::SeqCst) {
            self.inner.note_failed(dest);
        }
        false
    }

    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        assert_eq!(
            world_rank, self.inner.me,
            "a shm fabric only hosts its own rank's mailbox"
        );
        &self.inner.mailbox
    }

    fn publish_wait(&self, _me: usize, _record: WaitRecord) {}

    fn clear_wait(&self, _me: usize) {}

    fn deadlocked(&self, _me: usize) -> Option<String> {
        None
    }

    fn agreement(&self, key: AgreeKey, me: usize, value: u64, group: &[usize]) -> AgreeSlot {
        {
            let mut slots = self.inner.agreements.lock();
            slots.entry(key).or_default().insert(me, value);
        }
        self.inner.broadcast(&Frame::Agree {
            comm_id: key.0,
            kind: key.1,
            seq: key.2,
            rank: me as u64,
            value,
        });
        let mut slots = self.inner.agreements.lock();
        loop {
            let slot = slots.entry(key).or_default();
            let done = group.iter().all(|&w| {
                slot.contains_key(&w)
                    || self.inner.failed[w].load(Ordering::SeqCst)
                    || self.inner.finished[w].load(Ordering::SeqCst)
            });
            if done {
                return slot.clone();
            }
            self.inner
                .agree_cv
                .wait_for(&mut slots, self.inner.poll_interval);
        }
    }

    fn prune_comm(&self, _me: usize, comm_id: u64) {
        self.inner.mailbox.prune_comm(comm_id);
    }
}

// ---------------------------------------------------------------------------
// Establishment: advertise, decide, build (or fall back)
// ---------------------------------------------------------------------------

/// Outcome of an shm attempt that got as far as the rendezvous.
enum ShmAttempt {
    /// Every rank co-located: the ring mesh is up.
    Shm(ShmFabric),
    /// Not co-located. The listener and (suffixed) table are handed back
    /// so the TCP fallback can reuse them — a rank registers only once
    /// per epoch, so the fallback must not re-register.
    NotColocated(std::net::TcpListener, Vec<String>),
}

/// Attempt the shm path: pre-create inbound rings, advertise, decide.
/// An `Err` means the attempt died *before* the verdict (unusable dir,
/// mmap unsupported, rendezvous unreachable) with all created segment
/// files already removed.
fn try_establish_shm(
    server: &str,
    me: usize,
    spec: &WorldSpec,
    shm_dir: &Path,
    host: &str,
) -> Result<ShmAttempt> {
    // Create this rank's inbound rings BEFORE registering, so the table's
    // existence implies every producer's target file exists.
    std::fs::create_dir_all(shm_dir)
        .map_err(|e| Error::Codec(format!("create shm dir {}: {e}", shm_dir.display())))?;
    let np = spec.np;
    let mut inbound: Vec<Option<(Arc<SpscRing>, PathBuf)>> = Vec::with_capacity(np);
    let seg_len = spsc::segment_len(SHM_RING_CAPACITY);
    let cleanup = |inbound: &[Option<(Arc<SpscRing>, PathBuf)>]| {
        for slot in inbound.iter().flatten() {
            let _ = std::fs::remove_file(&slot.1);
        }
    };
    for peer in 0..np {
        if peer == me {
            inbound.push(None);
            continue;
        }
        let path = segment_path(shm_dir, spec.epoch, peer, me);
        let result = Segment::create(&path, seg_len).map(|segment| {
            let (ptr, len) = (segment.ptr, segment.len);
            let ring = unsafe { SpscRing::init_at(ptr, len, Some(Box::new(segment))) };
            (ring, path.clone())
        });
        match result {
            Ok(pair) => inbound.push(Some(pair)),
            Err(e) => {
                cleanup(&inbound);
                return Err(e);
            }
        }
    }

    // Register a TCP listener either way: it is the fallback transport,
    // and its address keeps the advertisement format uniform.
    let listener = std::net::TcpListener::bind("127.0.0.1:0")
        .map_err(|e| Error::Codec(format!("bind listener: {e}")))?;
    let tcp_addr = listener
        .local_addr()
        .map_err(|e| Error::Codec(format!("listener address: {e}")))?
        .to_string();
    let advertised = format!("{tcp_addr}#shm:{host}:{}", shm_dir.display());
    let table = match rendezvous::register(server, spec.epoch, me, np, &advertised) {
        Ok(table) => table,
        Err(e) => {
            cleanup(&inbound);
            return Err(e);
        }
    };

    if all_colocated(&table) {
        drop(listener); // rings won; nobody will dial
        return Ok(ShmAttempt::Shm(ShmFabric::from_table(
            me, spec, &table, inbound,
        )?));
    }
    // Not co-located: remove the segments nobody will map.
    cleanup(&inbound);
    Ok(ShmAttempt::NotColocated(listener, table))
}

/// Join world `spec` as rank `me` through the mode's preferred
/// transport. This is the one entry point `provide` uses for every
/// `pmrun` worker world:
///
/// * [`FabricMode::Tcp`] — the classic TCP mesh, no advertisement;
/// * [`FabricMode::Shm`] — rings or an error;
/// * [`FabricMode::Auto`] — rings when every rank is co-located and no
///   wire chaos is armed (chaos exercises reconnect/resume machinery
///   that shared memory, having no wire, does not possess), else TCP.
pub fn establish(
    server: &str,
    me: usize,
    spec: &WorldSpec,
    chaos: Option<NetChaosPlan>,
    mode: FabricMode,
    shm_dir: &Path,
    host: &str,
) -> Result<Arc<dyn Fabric>> {
    let want_shm = match mode {
        FabricMode::Tcp => false,
        FabricMode::Shm => true,
        FabricMode::Auto => chaos.is_none() && shm_supported(),
    };
    if !want_shm {
        let fabric = TcpFabric::establish_with_chaos(server, me, spec, chaos)?;
        return Ok(Arc::new(fabric));
    }
    match try_establish_shm(server, me, spec, shm_dir, host) {
        Ok(ShmAttempt::Shm(fabric)) => {
            // Same traced start gate the TCP mesh runs at the end of
            // `from_table`: co-located ranks share the host clock, so the
            // deadline needs no offset correction here.
            if spec.tracer.is_some() && spec.np > 1 {
                crate::fabric::traced_start_gate(&fabric, me, spec.np, spec.epoch);
            }
            Ok(Arc::new(fabric))
        }
        Ok(ShmAttempt::NotColocated(listener, table)) => {
            if mode == FabricMode::Shm {
                return Err(Error::InvalidConfig(
                    "--fabric shm but the world's ranks are not all co-located \
                     (use --fabric auto to fall back to TCP)"
                        .to_string(),
                ));
            }
            let fabric = TcpFabric::from_table(listener, table, me, spec, chaos)?;
            Ok(Arc::new(fabric))
        }
        Err(e) => {
            // The attempt failed before the co-location verdict (dir or
            // mmap trouble); it never registered, so a plain TCP
            // establishment is still possible in auto mode.
            if mode == FabricMode::Shm {
                return Err(e);
            }
            let fabric = TcpFabric::establish_with_chaos(server, me, spec, chaos)?;
            Ok(Arc::new(fabric))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternlets_mp::status::{SourceSel, TagSel};

    fn spec(np: usize, epoch: u64) -> WorldSpec {
        WorldSpec {
            np,
            ranks_per_node: 1,
            fault: None,
            poll_interval: Duration::from_millis(5),
            tracer: None,
            metrics: None,
            epoch,
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shm-fabric-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Establish a full shm mesh of `np` fabrics inside one test process —
    /// each plays a different world rank, exactly as `np` processes would
    /// (the segments are file-backed, so the mappings are genuinely
    /// shared, not just shared Arcs).
    fn mesh(np: usize, epoch: u64, tag: &str) -> (Vec<Arc<ShmFabric>>, PathBuf) {
        let server = rendezvous::serve().unwrap().to_string();
        let dir = scratch_dir(tag);
        let handles: Vec<_> = (0..np)
            .map(|me| {
                let server = server.clone();
                let dir = dir.clone();
                std::thread::spawn(move || {
                    match try_establish_shm(&server, me, &spec(np, epoch), &dir, "testhost")
                        .unwrap()
                    {
                        ShmAttempt::Shm(fabric) => Arc::new(fabric),
                        ShmAttempt::NotColocated(..) => {
                            panic!("one-host mesh decided not co-located")
                        }
                    }
                })
            })
            .collect();
        let fabrics = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (fabrics, dir)
    }

    fn env(comm_id: u64, src: usize, tag: i32, seq: u64) -> Envelope {
        Envelope {
            comm_id,
            src,
            tag,
            type_name: "i64",
            count: 1,
            payload: Payload::Bytes(bytes::Bytes::from(vec![7, 0, 0, 0, 0, 0, 0, 0])),
            seq,
            needs_ack: false,
        }
    }

    fn recv_one(fabric: &dyn Fabric, rank: usize, src: usize, tag: i32) -> Envelope {
        fabric
            .mailbox(rank)
            .recv_match(
                0,
                SourceSel::Rank(src),
                TagSel::Tag(tag),
                Duration::from_millis(5),
                || None,
                || {},
            )
            .unwrap()
    }

    #[test]
    fn addresses_split_and_rejoin() {
        let (tcp, ad) = split_addr("127.0.0.1:4000#shm:hostA:/tmp/x:y");
        assert_eq!(tcp, "127.0.0.1:4000");
        let ad = ad.unwrap();
        assert_eq!(ad.host, "hostA");
        assert_eq!(ad.dir, "/tmp/x:y"); // dirs may contain colons
        assert_eq!(split_addr("127.0.0.1:4000"), ("127.0.0.1:4000", None));
        assert_eq!(tcp_part("127.0.0.1:1#shm:h:/d"), "127.0.0.1:1");
    }

    #[test]
    fn colocation_requires_everyone_on_one_host() {
        let same = vec![
            "a:1#shm:h1:/d".to_string(),
            "a:2#shm:h1:/e".to_string(), // different dirs are fine
        ];
        assert!(all_colocated(&same));
        let split_hosts = vec!["a:1#shm:h1:/d".to_string(), "a:2#shm:h2:/d".to_string()];
        assert!(!all_colocated(&split_hosts));
        let one_plain = vec!["a:1#shm:h1:/d".to_string(), "a:2".to_string()];
        assert!(!all_colocated(&one_plain));
        assert!(!all_colocated(&[]));
    }

    #[test]
    fn envelope_crosses_the_ring_and_matches() {
        let (fabrics, dir) = mesh(2, 0, "envelope");
        fabrics[0].deliver(0, 1, env(0, 0, 5, 0), 0, false);
        let got = recv_one(fabrics[1].as_ref(), 1, 0, 5);
        assert_eq!(got.tag, 5);
        assert_eq!(got.type_name, "i64");
        assert_eq!(got.payload.len(), 8);
        for (me, f) in fabrics.iter().enumerate() {
            f.finish(me);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn duplicate_transmissions_dedup_on_the_receiver() {
        let (fabrics, dir) = mesh(2, 1, "dedup");
        fabrics[0].deliver(0, 1, env(0, 0, 9, 0), 0, true);
        fabrics[0].deliver(0, 1, env(0, 0, 9, 1), 0, false);
        for want_seq in [0, 1] {
            let got = recv_one(fabrics[1].as_ref(), 1, 0, 9);
            assert_eq!(got.seq, want_seq);
        }
        assert!(fabrics[1].mailbox(1).is_empty(), "duplicate was swallowed");
        for (me, f) in fabrics.iter().enumerate() {
            f.finish(me);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn finish_reads_as_clean_exit_not_failure() {
        let (fabrics, dir) = mesh(2, 2, "finish");
        fabrics[0].finish(0);
        let deadline = Instant::now() + Duration::from_secs(5);
        while fabrics[1].rank_alive(0) {
            assert!(Instant::now() < deadline, "Finish frame never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!fabrics[1].rank_failed(0), "clean exit must not be failure");
        fabrics[1].finish(1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn segment_files_are_unlinked_once_the_mesh_is_up() {
        let (fabrics, dir) = mesh(2, 3, "unlink");
        // Both sides exchange Hellos at establish; within a moment every
        // segment file should be gone while the rings keep working.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let left = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
            if left == 0 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{left} segment files still linked"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // The unlinked rings still deliver.
        fabrics[0].deliver(0, 1, env(0, 0, 4, 0), 0, false);
        assert_eq!(recv_one(fabrics[1].as_ref(), 1, 0, 4).tag, 4);
        for (me, f) in fabrics.iter().enumerate() {
            f.finish(me);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn silent_peer_is_declared_failed_by_heartbeat() {
        let (fabrics, dir) = mesh(3, 4, "silence");
        // Rank 0 "dies": no Finish, no ring close — only heartbeat
        // silence, exactly the signature a SIGKILL leaves behind.
        fabrics[0].sever();
        let deadline = Instant::now() + SHM_PEER_TIMEOUT + Duration::from_secs(5);
        for survivor in [1, 2] {
            while !fabrics[survivor].rank_failed(0) {
                assert!(Instant::now() < deadline, "heartbeat verdict never arrived");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        assert!(!fabrics[1].rank_failed(2), "survivors stay unfailed");
        for me in [1, 2] {
            fabrics[me].finish(me);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn agreement_completes_and_excludes_the_dead() {
        let (fabrics, dir) = mesh(3, 5, "agree");
        let group = [0, 1, 2];
        let handles: Vec<_> = fabrics
            .iter()
            .enumerate()
            .map(|(me, f)| {
                let f = Arc::clone(f);
                std::thread::spawn(move || f.agreement((0, 0, 0), me, me as u64 + 10, &group))
            })
            .collect();
        for (me, h) in handles.into_iter().enumerate() {
            let slot = h.join().unwrap();
            assert_eq!(slot.len(), 3, "rank {me} saw all contributions");
            assert_eq!(slot[&2], 12);
        }
        for (me, f) in fabrics.iter().enumerate() {
            f.finish(me);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn auto_falls_back_to_tcp_when_hosts_differ() {
        let server = rendezvous::serve().unwrap().to_string();
        let dir = scratch_dir("fallback");
        let handles: Vec<_> = (0..2)
            .map(|me| {
                let server = server.clone();
                let dir = dir.clone();
                std::thread::spawn(move || {
                    // Each rank claims a different host: auto must fall
                    // back to the TCP mesh on both sides.
                    establish(
                        &server,
                        me,
                        &spec(2, 6),
                        None,
                        FabricMode::Auto,
                        &dir,
                        &format!("host-{me}"),
                    )
                    .unwrap()
                })
            })
            .collect();
        let fabrics: Vec<Arc<dyn Fabric>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The fallback mesh still delivers (over sockets).
        fabrics[0].deliver(0, 1, env(0, 0, 8, 0), 0, false);
        assert_eq!(recv_one(fabrics[1].as_ref(), 1, 0, 8).tag, 8);
        // And the pre-created segments were cleaned up.
        let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftover, 0, "fallback must remove its segment files");
        for (me, f) in fabrics.iter().enumerate() {
            f.finish(me);
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn explicit_shm_mode_refuses_split_hosts() {
        let server = rendezvous::serve().unwrap().to_string();
        let dir = scratch_dir("refuse");
        let handles: Vec<_> = (0..2)
            .map(|me| {
                let server = server.clone();
                let dir = dir.clone();
                std::thread::spawn(move || {
                    establish(
                        &server,
                        me,
                        &spec(2, 7),
                        None,
                        FabricMode::Shm,
                        &dir,
                        &format!("island-{me}"),
                    )
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_err(), "shm mode must not fall back");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn large_payloads_stream_through_a_smaller_ring() {
        let (fabrics, dir) = mesh(2, 8, "large");
        // 4 MiB payload through 1 MiB rings: must stream, not wedge.
        let big = vec![0xABu8; 4 << 20];
        let payload = Payload::Bytes(bytes::Bytes::from(big.clone()));
        let sender = {
            let f = Arc::clone(&fabrics[0]);
            std::thread::spawn(move || {
                f.deliver(
                    0,
                    1,
                    Envelope {
                        comm_id: 0,
                        src: 0,
                        tag: 3,
                        type_name: "u8",
                        count: big.len(),
                        payload,
                        seq: 0,
                        needs_ack: false,
                    },
                    0,
                    false,
                );
            })
        };
        let got = recv_one(fabrics[1].as_ref(), 1, 0, 3);
        assert_eq!(got.payload.len(), 4 << 20);
        sender.join().unwrap();
        for (me, f) in fabrics.iter().enumerate() {
            f.finish(me);
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
