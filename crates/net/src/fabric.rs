//! The TCP fabric: one process's slice of a world, over a socket mesh.
//!
//! Every participating rank binds a loopback listener, registers it with
//! the job's rendezvous server, and — once the full address table is back
//! — establishes one TCP connection per peer (the higher rank dials the
//! lower rank's listener, so each pair gets exactly one socket). All
//! traffic to a peer travels on that connection as [`Frame`]s; TCP's
//! per-stream ordering carries MPI's non-overtaking guarantee across the
//! process boundary exactly as the in-process queue order does.
//!
//! ## Self-healing connections
//!
//! A lost connection is not a lost peer. Every *sequenced* frame (see
//! [`Frame::is_sequenced`]) is retained in a per-peer [`SendRing`] until
//! the peer acknowledges it — acks piggyback on the heartbeat as
//! `Ping { seen }` — and each end counts the sequenced frames it has
//! delivered. When a socket dies (EOF, write error, or a frame whose CRC
//! doesn't check out), the higher-ranked side redials the lower side's
//! listener with exponential backoff and exchanges `Resume` frames
//! carrying those delivery counts; both send rings rewind to the peer's
//! count and replay the unacknowledged tail. The counts are exact, so
//! resumption is exactly-once by construction — no frame is lost (the
//! ring still holds it) and none is duplicated (nothing below the peer's
//! count is resent); the mailbox's sequence dedup stands behind it as a
//! second line of defense. Only when the reconnect budget
//! ([`RECONNECT_BUDGET`]) is exhausted does the verdict escalate to
//! [`Error::RankFailed`](patternlets_core::Error::RankFailed).
//!
//! ## Failure detection
//!
//! Ranks announce a normal exit with a `Finish` frame before shutting
//! their write side down, so EOF-after-Finish reads as a clean exit. EOF
//! *without* Finish enters the reconnect cycle above; a peer that cannot
//! be re-reached within the budget is marked failed, surfacing to the
//! application as the same `RankFailed` the fault-injection layer
//! produces; the ULFM-style `agree`/`shrink` recovery path works
//! unchanged across processes. A heartbeat thread additionally pings
//! every peer; one silent past [`PEER_TIMEOUT`] gets a *probe* — its
//! connection is cut, forcing a reconnect round-trip — and is declared
//! failed only if still silent after that.
//!
//! ## Wire chaos
//!
//! With a [`NetChaosPlan`] armed (`pmrun --net-chaos SEED`), every
//! outgoing batch passes a seeded per-connection chaos stream that may
//! cut the connection before the write, truncate the write mid-frame, or
//! flip one bit (which the frame CRC catches on the far side). All three
//! funnel into the same reconnect/resume machinery, so a chaos soak
//! exercises exactly the code paths a flaky network would.
//!
//! ## What the thread backend has that this one doesn't
//!
//! The waits-for deadlock *detector* needs a global view of every rank's
//! blocked receive; a process only sees its own. [`Fabric::deadlocked`]
//! therefore always answers `None` here (never a false positive) — a
//! genuinely cyclic deadlock hangs under `pmrun` just as it would under
//! real MPI, while the common classroom case (receiving from a rank that
//! exited) still resolves, because `Finish` frames feed the same
//! every-sender-finished check the thread backend uses.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use patternlets_core::rng::{Rng, SplitMix64};
use patternlets_core::{Error, Result};
use patternlets_metrics::{CounterId, HistId, MetricsHub};
use patternlets_mp::envelope::{Envelope, Payload};
use patternlets_mp::fabric::{AgreeKey, AgreeSlot, Fabric, WorldSpec};
use patternlets_mp::fault::{ChaosDecision, FaultState};
use patternlets_mp::mailbox::Mailbox;
use patternlets_mp::world::{MsgEvent, WaitRecord};
use patternlets_trace::{EventKind, Tracer};

use crate::chaos::{ChaosAction, NetChaosConn, NetChaosPlan};
use crate::frame::{encode_frame, read_frame, Frame, CRC_MISMATCH, IDLE_TIMEOUT};
use crate::rendezvous;
use crate::ring::SendRing;

/// How often the heartbeat thread pings every live peer.
pub const HEARTBEAT_EVERY: Duration = Duration::from_millis(100);

/// A peer silent this long (no frame, no ping) while not finished gets a
/// reconnect probe; still silent after the probe, it is declared failed.
/// EOF detection fires far earlier for killed processes; this backstop
/// only matters for half-open connections.
pub const PEER_TIMEOUT: Duration = Duration::from_secs(10);

/// Total time one reconnect cycle may spend redialing (or waiting for
/// the peer to redial) before the peer is declared failed. Short enough
/// that genuine deaths are detected promptly; long enough for several
/// backed-off dial attempts against a peer that is merely mid-hiccup.
pub const RECONNECT_BUDGET: Duration = Duration::from_secs(2);

/// How long each side of a `Resume` handshake waits for the other's
/// frame before abandoning that attempt (the budget may allow retries).
const RESUME_REPLY_TIMEOUT: Duration = Duration::from_millis(500);

/// Read timeout armed on every established peer connection. A peer that
/// goes silent *inside* a frame for this long has stalled: the reader
/// gets a [`MID_FRAME_STALL`](crate::frame::MID_FRAME_STALL) error and
/// enters the ordinary teardown→reconnect path instead of blocking in
/// `read` past the reconnect budget. Timeouts *between* frames are
/// ignored by the reader (an idle link is the heartbeat layer's problem),
/// so this must merely be comfortably above one heartbeat interval,
/// and below [`RECONNECT_BUDGET`] so a stall still leaves dial time.
const MID_FRAME_TIMEOUT: Duration = Duration::from_millis(1000);

/// Poll cadence of the (non-blocking) accept thread that fields
/// reconnect dials.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// On `finish`, how long to wait for peers to acknowledge the frames
/// still in flight (the Finish itself included) before half-closing.
/// Acks ride the peers' heartbeats, so the common case drains in one or
/// two heartbeat intervals.
const FINISH_DRAIN: Duration = Duration::from_secs(1);

/// `TYPE_NAME`s of the built-in [`patternlets_mp::Datatype`] impls, used
/// to intern wire type names back into `&'static str` without leaking.
const KNOWN_TYPE_NAMES: &[&str] = &[
    "i32",
    "i64",
    "u32",
    "u64",
    "f32",
    "f64",
    "u8",
    "bool",
    "usize",
    "String",
    "(T, usize)",
];

/// Intern a wire type name. Built-in names map to their static constants;
/// unknown (user-defined `Datatype`) names are leaked once and cached, so
/// repeated traffic of the same type allocates nothing.
pub(crate) fn intern_type_name(name: &str) -> &'static str {
    if let Some(known) = KNOWN_TYPE_NAMES.iter().find(|&&k| k == name) {
        return known;
    }
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA.lock();
    if let Some(cached) = extra.iter().find(|&&k| k == name) {
        return cached;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

/// Most frames one flush pass will hand to a single vectored write.
/// Bounds both the `IoSlice` array and how long one sender can be stuck
/// flushing other senders' traffic.
const MAX_COALESCED: usize = 64;

/// The write side's connection lifecycle. `Down` is transient — a
/// reconnect may bring the link back; `Terminal` is forever (the peer
/// finished or failed, or this fabric is tearing down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Connected,
    Down,
    Terminal,
}

/// Everything a flusher needs under one lock: the replayable ring of
/// sequenced frames, the fire-and-forget queue of unsequenced ones
/// (heartbeats — regenerated, never replayed), and the flush/connection
/// state.
struct Ring {
    seq: SendRing,
    unseq: VecDeque<Vec<u8>>,
    flushing: bool,
    state: ConnState,
}

/// One peer connection's write side: a combining writer over a
/// *replaceable* socket. A sender enqueues its record and, if nobody is
/// flushing, becomes the flusher — draining the queue in batches of up
/// to [`MAX_COALESCED`] records per vectored write. Records enqueued
/// while a flush is in progress ride along in the flusher's next batch,
/// so under contention many small frames (heartbeats, acks, collective
/// rounds) coalesce into one syscall; an uncontended sender writes
/// immediately, so nothing ever waits on a timer. `set_nodelay(true)`
/// stays on — batching happens here, above the socket, not in Nagle's
/// algorithm.
///
/// Sequenced records outlive the socket: they stay in the [`SendRing`]
/// until acked, and [`PeerWriter::resume`] swaps in a fresh socket and
/// rewinds the ring to the peer's delivery count. While `Down`,
/// sequenced sends accumulate (to be replayed) and unsequenced sends are
/// dropped.
///
/// Lock order: `ring` → `breaker` → `stream`. `breaker` holds a clone of
/// the socket used only for `shutdown`, so a blocked writer can be
/// kicked loose without waiting for its write to return.
struct PeerWriter {
    stream: Mutex<Option<TcpStream>>,
    breaker: Mutex<Option<TcpStream>>,
    ring: Mutex<Ring>,
    /// Seeded per-connection chaos stream, when `--net-chaos` is armed.
    chaos: Option<Mutex<NetChaosConn>>,
    /// `(hub, my lane, peer lane)` when metrics are on: batch sizes and
    /// frame counts go to my lane, bytes to the destination peer's lane.
    metrics: Option<(MetricsHub, usize, usize)>,
}

impl PeerWriter {
    fn new(
        stream: TcpStream,
        metrics: Option<(MetricsHub, usize, usize)>,
        chaos: Option<NetChaosConn>,
    ) -> Self {
        let breaker = stream.try_clone().ok();
        PeerWriter {
            stream: Mutex::new(Some(stream)),
            breaker: Mutex::new(breaker),
            ring: Mutex::new(Ring {
                seq: SendRing::new(),
                unseq: VecDeque::new(),
                flushing: false,
                state: ConnState::Connected,
            }),
            chaos: chaos.map(Mutex::new),
            metrics,
        }
    }

    /// Enqueue one encoded record and make sure it gets flushed. Returns
    /// `false` only when the link is terminal (peer finished/failed or
    /// fabric closing) — a transiently-down link accepts sequenced
    /// records for replay and silently drops unsequenced ones.
    fn send(&self, record: &[u8], sequenced: bool) -> bool {
        {
            let mut ring = self.ring.lock();
            match ring.state {
                ConnState::Terminal => return false,
                ConnState::Down => {
                    if sequenced {
                        ring.seq.push(record.to_vec());
                    }
                    return sequenced;
                }
                ConnState::Connected => {}
            }
            if sequenced {
                ring.seq.push(record.to_vec());
            } else {
                ring.unseq.push_back(record.to_vec());
            }
            if ring.flushing {
                // The active flusher will pick this record up before it
                // retires; nothing more to do here.
                return true;
            }
            ring.flushing = true;
        }
        self.flush_loop();
        true
    }

    /// Drain the ring in batches until empty or the link drops. Caller
    /// must have set `flushing`; this clears it on exit.
    fn flush_loop(&self) {
        loop {
            let batch: Vec<Vec<u8>> = {
                let mut ring = self.ring.lock();
                if ring.state != ConnState::Connected
                    || (ring.unseq.is_empty() && ring.seq.unsent() == 0)
                {
                    ring.flushing = false;
                    return;
                }
                let mut batch: Vec<Vec<u8>> = Vec::new();
                while batch.len() < MAX_COALESCED {
                    match ring.unseq.pop_front() {
                        Some(r) => batch.push(r),
                        None => break,
                    }
                }
                let room = MAX_COALESCED - batch.len();
                batch.extend(ring.seq.next_batch(room));
                batch
            };
            if !self.write_batch(&batch) {
                self.disconnect();
                // Loop back: the state check above clears `flushing`.
            }
        }
    }

    /// Write a batch of records — through the chaos plan when armed —
    /// with vectored writes, advancing across short writes manually
    /// (`write_all_vectored` is not yet stable). `false` drops the
    /// connection (sequenced frames in the batch stay in the ring and
    /// are replayed after resume).
    fn write_batch(&self, batch: &[Vec<u8>]) -> bool {
        use std::io::Write;
        if let Some(chaos) = &self.chaos {
            let total: usize = batch.iter().map(|r| r.len()).sum();
            let decision = chaos.lock().decide(total, batch.len());
            if decision.delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(decision.delay_ms));
            }
            match decision.action {
                ChaosAction::Pass => {}
                ChaosAction::Cut => return false,
                ChaosAction::Truncate { bytes } => {
                    let flat: Vec<u8> = batch.concat();
                    let cut = bytes.min(flat.len());
                    let mut stream = self.stream.lock();
                    if let Some(s) = stream.as_mut() {
                        let _ = s.write_all(&flat[..cut]);
                    }
                    return false;
                }
                ChaosAction::Corrupt { byte, bit } => {
                    // Damage a copy; the ring keeps the clean original
                    // for the post-CRC-reject replay.
                    let mut flat: Vec<u8> = batch.concat();
                    if let Some(b) = flat.get_mut(byte) {
                        *b ^= 1 << bit;
                    }
                    let mut stream = self.stream.lock();
                    let ok = match stream.as_mut() {
                        Some(s) => s.write_all(&flat).is_ok(),
                        None => false,
                    };
                    if ok {
                        self.record_batch(batch);
                    }
                    return ok;
                }
            }
        }
        if !self.write_batch_vectored(batch) {
            return false;
        }
        self.record_batch(batch);
        true
    }

    fn write_batch_vectored(&self, batch: &[Vec<u8>]) -> bool {
        use std::io::{ErrorKind, IoSlice, Write};
        let mut stream = self.stream.lock();
        let Some(stream) = stream.as_mut() else {
            return false;
        };
        let mut idx = 0; // first record not fully written
        let mut off = 0; // bytes of batch[idx] already written
        while idx < batch.len() {
            let mut slices = Vec::with_capacity(batch.len() - idx);
            slices.push(IoSlice::new(&batch[idx][off..]));
            for record in &batch[idx + 1..] {
                slices.push(IoSlice::new(record));
            }
            let mut n = match stream.write_vectored(&slices) {
                Ok(0) => return false,
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            };
            while n > 0 {
                let remaining = batch[idx].len() - off;
                if n >= remaining {
                    n -= remaining;
                    idx += 1;
                    off = 0;
                } else {
                    off += n;
                    n = 0;
                }
            }
        }
        true
    }

    fn record_batch(&self, batch: &[Vec<u8>]) {
        if let Some((hub, me, peer)) = &self.metrics {
            hub.observe(*me, HistId::WRITEV_BATCH_FRAMES, batch.len() as u64);
            hub.add(*me, CounterId::NetFramesSent, batch.len() as u64);
            let bytes: u64 = batch.iter().map(|r| r.len() as u64).sum();
            hub.add(*peer, CounterId::NetBytesToPeer, bytes);
        }
    }

    /// Acknowledge delivery: drop retained frames below `seen` (carried
    /// by the peer's `Ping`).
    fn ack(&self, seen: u64) {
        self.ring.lock().seq.ack(seen);
    }

    /// Unacknowledged sequenced frames still retained.
    fn retained(&self) -> usize {
        self.ring.lock().seq.retained()
    }

    /// Drop the current socket and mark the link down (unless already
    /// terminal). Safe from any thread: the breaker clone shuts the
    /// socket down without waiting for an in-flight write, which then
    /// errors out and releases the stream lock.
    fn disconnect(&self) {
        {
            let mut ring = self.ring.lock();
            if ring.state == ConnState::Connected {
                ring.state = ConnState::Down;
            }
            ring.unseq.clear();
        }
        if let Some(s) = self.breaker.lock().take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        *self.stream.lock() = None;
    }

    /// Install a fresh socket and rewind the ring to the peer's delivery
    /// count; returns how many retained frames will be replayed. The
    /// frames go out with the next flush (a heartbeat at the latest), so
    /// the calling reader thread never blocks on a socket write here.
    fn resume(&self, stream: TcpStream, peer_recv: u64) -> Result<u64> {
        let mut ring = self.ring.lock();
        if ring.state == ConnState::Terminal {
            return Err(Error::Codec("peer link already terminal".into()));
        }
        let replayed = ring.seq.resume(peer_recv)?;
        *self.breaker.lock() = stream.try_clone().ok();
        *self.stream.lock() = Some(stream);
        ring.state = ConnState::Connected;
        Ok(replayed)
    }

    /// Permanently stop writing (peer finished/failed, or `sever`). With
    /// `cut`, the socket is shut down both ways; without, it is left for
    /// `half_close` to handle.
    fn terminal(&self, cut: bool) {
        {
            let mut ring = self.ring.lock();
            ring.state = ConnState::Terminal;
            ring.unseq.clear();
        }
        if cut {
            if let Some(s) = self.breaker.lock().take() {
                let _ = s.shutdown(Shutdown::Both);
            }
            *self.stream.lock() = None;
        }
    }

    /// Half-close for teardown: peers read our `Finish`, then a clean
    /// EOF. No further writes.
    fn half_close(&self) {
        {
            let mut ring = self.ring.lock();
            ring.state = ConnState::Terminal;
            ring.unseq.clear();
        }
        if let Some(s) = &*self.breaker.lock() {
            let _ = s.shutdown(Shutdown::Write);
        }
    }
}

/// A redial fielded by the accept thread, parked until the peer's reader
/// thread adopts it: the fresh socket plus the recv count the dialer
/// reported in its `Resume`.
struct PendingResume {
    stream: TcpStream,
    their_recv: u64,
}

struct Inner {
    me: usize,
    np: usize,
    epoch: u64,
    names: Vec<String>,
    /// Rendezvous address table, kept for redials.
    addrs: Vec<String>,
    /// This rank's listener, kept open for redials (serviced by the
    /// accept thread).
    listener: TcpListener,
    poll_interval: Duration,
    tracer: Option<Tracer>,
    metrics: Option<MetricsHub>,
    fault: Option<FaultState>,
    /// This process's rank's mailbox — the only one a `Comm` here reads.
    mailbox: Mailbox,
    send_seq: AtomicU64,
    finished: Vec<AtomicBool>,
    failed: Vec<AtomicBool>,
    /// Write sides, indexed by peer world rank (`None` at `me`).
    peers: Vec<Option<PeerWriter>>,
    /// Count of *sequenced* frames delivered from each peer — the number
    /// this side reports in `Ping { seen }` acks and `Resume` handshakes.
    recv_seq: Vec<AtomicU64>,
    /// Per-peer: a reconnect probe is outstanding (set on first
    /// heartbeat timeout, cleared on any frame heard).
    probed: Vec<AtomicBool>,
    /// Per-peer handoff slot for redialed connections (accept thread
    /// produces, the peer's reader thread consumes).
    pending: Mutex<Vec<Option<PendingResume>>>,
    pending_cv: Condvar,
    /// Milliseconds (since `start`) each peer was last heard from.
    last_heard: Vec<AtomicU64>,
    /// Nanoseconds (since `start`, 0 = none pending) of the oldest
    /// unanswered heartbeat ping per peer; the next frame heard from the
    /// peer closes it into the RTT histogram. There is no dedicated pong
    /// frame — peers talk at least every heartbeat interval, so this
    /// measures ping-to-next-frame time.
    pending_ping_ns: Vec<AtomicU64>,
    start: Instant,
    agreements: Mutex<HashMap<AgreeKey, AgreeSlot>>,
    agree_cv: Condvar,
    /// Clock-probe replies from rank 0 land here (a reader thread
    /// produces, the establish-time offset estimator consumes; see
    /// [`Inner::estimate_clock_offset`]).
    clock_reply: Mutex<Option<(u64, u64)>>,
    clock_cv: Condvar,
    /// Raised by `finish`/`sever`: background threads stop writing and
    /// no reconnects are attempted or served.
    closing: AtomicBool,
}

impl Inner {
    fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Estimate this process's wall-clock offset to rank 0 — rank 0's
    /// clock minus ours, in nanoseconds — by RTT-midpoint probing over
    /// the freshly established peer link. Each probe yields
    /// `offset = s − (t0+t1)/2`; the sample with the smallest round trip
    /// wins, since its midpoint error is bounded by that round trip's
    /// asymmetry. Returns 0 when no probe completes (rank 0's reply is
    /// then just absent and the traces fall back to unaligned merging).
    fn estimate_clock_offset(&self) -> i64 {
        const PROBES: usize = 8;
        const REPLY_TIMEOUT: Duration = Duration::from_millis(100);
        let mut best: Option<(u64, i64)> = None; // (rtt_ns, offset_ns)
        for _ in 0..PROBES {
            let t0 = unix_now_ns();
            let probe = encode_frame(&Frame::ClockProbe { t0 });
            if !self.write_to(0, &probe, false) {
                break;
            }
            let deadline = Instant::now() + REPLY_TIMEOUT;
            let mut slot = self.clock_reply.lock();
            let reply = loop {
                match slot.take() {
                    Some((echo, s)) if echo == t0 => break Some(s),
                    // A stale reply to an expired probe: discard, keep
                    // waiting for ours.
                    Some(_) => continue,
                    None => {}
                }
                let timeout = deadline.saturating_duration_since(Instant::now());
                if timeout.is_zero() {
                    break None;
                }
                self.clock_cv.wait_for(&mut slot, timeout);
            };
            drop(slot);
            let Some(s) = reply else { continue };
            let t1 = unix_now_ns();
            let rtt = t1.saturating_sub(t0);
            let offset = s as i64 - t0.midpoint(t1) as i64;
            if best.is_none_or(|(r, _)| rtt < r) {
                best = Some((rtt, offset));
            }
        }
        best.map_or(0, |(_, o)| o)
    }

    /// Write a pre-encoded record to one peer through its combining
    /// writer. `false` when the link is terminal and the peer never
    /// finished (caller decides whether that's a failure verdict).
    fn write_to(&self, peer: usize, record: &[u8], sequenced: bool) -> bool {
        let Some(writer) = &self.peers[peer] else {
            return true;
        };
        writer.send(record, sequenced)
    }

    /// Send `frame` to every peer; peers whose link is terminal and who
    /// never announced Finish are marked failed (local verdict — every
    /// process discovers a dead peer through its own socket).
    fn broadcast(&self, frame: &Frame) {
        let record = encode_frame(frame);
        let sequenced = frame.is_sequenced();
        let mut dead = Vec::new();
        for peer in 0..self.np {
            if peer == self.me || self.peers[peer].is_none() {
                continue;
            }
            if !self.write_to(peer, &record, sequenced)
                && !self.finished[peer].load(Ordering::SeqCst)
            {
                dead.push(peer);
            }
        }
        for peer in dead {
            self.note_failed(peer);
        }
    }

    /// Record a failure verdict locally and wake everything that must
    /// re-examine membership. Does not gossip: each process reaches its
    /// own verdict through its own connection to the dead peer.
    fn note_failed(&self, rank: usize) {
        if self.failed[rank].swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(writer) = &self.peers[rank] {
            writer.terminal(true);
        }
        if let Some(hub) = &self.metrics {
            hub.incr(rank, CounterId::NetRankFailures);
        }
        let _lock = self.agreements.lock();
        self.agree_cv.notify_all();
    }

    fn handle_frame(&self, peer: usize, frame: Frame) {
        self.last_heard[peer].store(self.elapsed_ms(), Ordering::Relaxed);
        self.probed[peer].store(false, Ordering::Relaxed);
        if let Some(hub) = &self.metrics {
            // Any frame from a peer with a ping outstanding closes the
            // RTT sample (ping-to-next-frame; see `pending_ping_ns`).
            let sent = self.pending_ping_ns[peer].swap(0, Ordering::Relaxed);
            if sent != 0 {
                let now = self.start.elapsed().as_nanos() as u64;
                hub.observe(self.me, HistId::HEARTBEAT_RTT_NS, now.saturating_sub(sent));
            }
        }
        if frame.is_sequenced() {
            self.recv_seq[peer].fetch_add(1, Ordering::SeqCst);
        }
        match frame {
            Frame::Env {
                comm_id,
                src,
                tag,
                type_name,
                count,
                seq,
                needs_ack,
                overtake,
                payload,
            } => {
                let env = Envelope {
                    comm_id,
                    src: src as usize,
                    tag,
                    type_name: intern_type_name(&type_name),
                    count: count as usize,
                    payload: Payload::Bytes(bytes::Bytes::from(payload)),
                    seq,
                    needs_ack,
                };
                self.mailbox.deliver_displaced(env, overtake as usize);
            }
            Frame::Finish { rank } => {
                let rank = rank as usize;
                if rank < self.np {
                    self.finished[rank].store(true, Ordering::SeqCst);
                    // The link is deliberately NOT marked terminal here:
                    // our own Finish may not have gone out yet (both
                    // sides announce concurrently), and muting the
                    // writer would leave the peer draining against its
                    // full FINISH_DRAIN budget waiting for it. The
                    // `finished` flag alone keeps the heartbeat and
                    // reconnect machinery away from this peer;
                    // `half_close` makes the link terminal at teardown.
                    let _lock = self.agreements.lock();
                    self.agree_cv.notify_all();
                }
            }
            Frame::Failed { rank } => {
                let rank = rank as usize;
                if rank < self.np {
                    self.note_failed(rank);
                }
            }
            Frame::Agree {
                comm_id,
                kind,
                seq,
                rank,
                value,
            } => {
                let mut slots = self.agreements.lock();
                slots
                    .entry((comm_id, kind, seq))
                    .or_default()
                    .insert(rank as usize, value);
                self.agree_cv.notify_all();
            }
            Frame::Ping { seen } => {
                // The peer's delivery count: prune the send ring.
                if let Some(writer) = &self.peers[peer] {
                    writer.ack(seen);
                }
            }
            Frame::ClockProbe { t0 } => {
                // Answer with our wall clock; the prober turns the echo
                // into an RTT-midpoint offset estimate.
                let reply = encode_frame(&Frame::ClockReply {
                    t0,
                    server_ns: unix_now_ns(),
                });
                self.write_to(peer, &reply, false);
            }
            Frame::ClockReply { t0, server_ns } => {
                *self.clock_reply.lock() = Some((t0, server_ns));
                self.clock_cv.notify_all();
            }
            // A stray handshake, resume, metrics or job-control frame
            // after setup carries nothing actionable (Resume is consumed
            // during the handshake itself; metrics frames are interpreted
            // by pmrun's collector; job-control frames belong on the
            // daemon's worker control connections, never on a peer mesh).
            Frame::Hello { .. }
            | Frame::Resume { .. }
            | Frame::Register { .. }
            | Frame::Table { .. }
            | Frame::Metrics { .. }
            | Frame::WorkerHello { .. }
            | Frame::JobAssign { .. }
            | Frame::JobLine { .. }
            | Frame::JobMetrics { .. }
            | Frame::JobDone { .. }
            | Frame::JobTrace { .. }
            | Frame::Shutdown => {}
        }
    }

    /// One peer link's read side, across reconnects: drain frames until
    /// the stream dies, then try to re-establish it; only when that
    /// fails (budget exhausted, or teardown) does the loop end, with a
    /// failure verdict iff the peer neither finished nor are we closing.
    fn reader_cycle(&self, peer: usize, mut stream: TcpStream) {
        loop {
            loop {
                match read_frame(&mut stream) {
                    Ok(Some(frame)) => self.handle_frame(peer, frame),
                    Ok(None) => break,
                    Err(e) => {
                        let msg = e.to_string();
                        // A timeout with no frame underway is just an idle
                        // link; keep reading (heartbeats own liveness). A
                        // mid-frame stall or CRC reject falls through to
                        // the teardown→reconnect path below.
                        if msg.contains(IDLE_TIMEOUT) {
                            if self.closing.load(Ordering::SeqCst) {
                                break;
                            }
                            continue;
                        }
                        if msg.contains(CRC_MISMATCH) {
                            if let Some(hub) = &self.metrics {
                                hub.incr(self.me, CounterId::NetCrcRejects);
                            }
                        }
                        break;
                    }
                }
            }
            // The stream is dead (EOF, read error, or corrupt frame).
            // Sync the write side before deciding what comes next.
            if let Some(writer) = &self.peers[peer] {
                writer.disconnect();
            }
            if self.closing.load(Ordering::SeqCst)
                || self.finished[peer].load(Ordering::SeqCst)
                || self.failed[peer].load(Ordering::SeqCst)
            {
                return;
            }
            let next = if self.me > peer {
                self.reconnect_dial(peer)
            } else {
                self.reconnect_accept(peer)
            };
            match next {
                Some(fresh) => stream = fresh,
                None => {
                    if !self.finished[peer].load(Ordering::SeqCst)
                        && !self.closing.load(Ordering::SeqCst)
                    {
                        self.note_failed(peer);
                    }
                    return;
                }
            }
        }
    }

    /// Dial side of a reconnect (this rank outranks the peer): redial
    /// the peer's listener with exponential backoff + deterministic
    /// jitter until the handshake lands or the budget runs out.
    fn reconnect_dial(&self, peer: usize) -> Option<TcpStream> {
        let deadline = Instant::now() + RECONNECT_BUDGET;
        let mut jitter = SplitMix64::new((self.me as u64) << 32 ^ (peer as u64) << 16 ^ self.epoch);
        let mut attempt = 0u32;
        loop {
            if self.closing.load(Ordering::SeqCst)
                || self.failed[peer].load(Ordering::SeqCst)
                || self.finished[peer].load(Ordering::SeqCst)
            {
                return None;
            }
            if let Some(stream) = self.try_dial(peer, attempt) {
                return Some(stream);
            }
            let backoff = Duration::from_millis(5u64 << attempt.min(6));
            let spread = backoff.as_micros().max(2) as u64 / 2;
            let sleep = backoff + Duration::from_micros(jitter.gen_range(spread));
            if Instant::now() + sleep >= deadline {
                return None;
            }
            std::thread::sleep(sleep);
            attempt += 1;
        }
    }

    fn try_dial(&self, peer: usize, attempt: u32) -> Option<TcpStream> {
        let mut stream = TcpStream::connect(crate::shm::tcp_part(&self.addrs[peer])).ok()?;
        stream.set_read_timeout(Some(RESUME_REPLY_TIMEOUT)).ok()?;
        crate::frame::write_frame(
            &mut stream,
            &Frame::Resume {
                epoch: self.epoch,
                rank: self.me as u64,
                recv_seq: self.recv_seq[peer].load(Ordering::SeqCst),
            },
        )
        .ok()?;
        match read_frame(&mut stream) {
            Ok(Some(Frame::Resume {
                epoch,
                rank,
                recv_seq: theirs,
            })) if epoch == self.epoch && rank as usize == peer => {
                stream.set_read_timeout(Some(MID_FRAME_TIMEOUT)).ok()?;
                let _ = stream.set_nodelay(true);
                self.adopt(peer, stream, theirs, attempt)
            }
            _ => None,
        }
    }

    /// Accept side of a reconnect (the peer outranks this rank): wait
    /// for the accept thread to hand over a redialed connection.
    fn reconnect_accept(&self, peer: usize) -> Option<TcpStream> {
        let deadline = Instant::now() + RECONNECT_BUDGET;
        loop {
            if self.closing.load(Ordering::SeqCst)
                || self.failed[peer].load(Ordering::SeqCst)
                || self.finished[peer].load(Ordering::SeqCst)
            {
                return None;
            }
            let slot = self.pending.lock()[peer].take();
            if let Some(PendingResume {
                mut stream,
                their_recv,
            }) = slot
            {
                // Reply with our count *before* installing the write
                // side, so our Resume is the first frame on the wire and
                // the dialer's handshake read sees exactly it.
                let replied = crate::frame::write_frame(
                    &mut stream,
                    &Frame::Resume {
                        epoch: self.epoch,
                        rank: self.me as u64,
                        recv_seq: self.recv_seq[peer].load(Ordering::SeqCst),
                    },
                )
                .is_ok();
                if replied {
                    let _ = stream.set_nodelay(true);
                    if let Some(adopted) = self.adopt(peer, stream, their_recv, 0) {
                        return Some(adopted);
                    }
                }
                // Stale or broken redial; keep waiting for another.
            } else {
                let now = Instant::now();
                if now >= deadline {
                    return None;
                }
                let wait = (deadline - now).min(Duration::from_millis(50));
                let mut pending = self.pending.lock();
                if pending[peer].is_none() {
                    self.pending_cv.wait_for(&mut pending, wait);
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
        }
    }

    /// Common tail of both reconnect sides: rewind the send ring to the
    /// peer's count, install the fresh socket, and meter the recovery.
    fn adopt(
        &self,
        peer: usize,
        stream: TcpStream,
        their_recv: u64,
        attempt: u32,
    ) -> Option<TcpStream> {
        let writer = self.peers[peer].as_ref()?;
        let write_half = stream.try_clone().ok()?;
        let replayed = writer.resume(write_half, their_recv).ok()?;
        self.probed[peer].store(false, Ordering::Relaxed);
        self.last_heard[peer].store(self.elapsed_ms(), Ordering::Relaxed);
        if let Some(hub) = &self.metrics {
            hub.incr(self.me, CounterId::NetReconnects);
            if replayed > 0 {
                hub.add(self.me, CounterId::NetFramesReplayed, replayed);
            }
        }
        if let Some(tracer) = &self.tracer {
            tracer.emit(self.me, EventKind::Retransmit { attempt });
        }
        Some(stream)
    }

    /// Field redials: accept, read the dialer's `Resume`, and park the
    /// connection for the matching reader thread to adopt. Non-blocking
    /// accept with a poll keeps teardown prompt.
    fn accept_loop(&self) {
        let _ = self.listener.set_nonblocking(true);
        loop {
            if self.closing.load(Ordering::SeqCst) {
                return;
            }
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(RESUME_REPLY_TIMEOUT));
                    match read_frame(&mut stream) {
                        Ok(Some(Frame::Resume {
                            epoch,
                            rank,
                            recv_seq,
                        })) if epoch == self.epoch
                            && (rank as usize) > self.me
                            && (rank as usize) < self.np =>
                        {
                            let _ = stream.set_read_timeout(Some(MID_FRAME_TIMEOUT));
                            let peer = rank as usize;
                            let mut pending = self.pending.lock();
                            // A newer redial supersedes a stale one.
                            pending[peer] = Some(PendingResume {
                                stream,
                                their_recv: recv_seq,
                            });
                            self.pending_cv.notify_all();
                        }
                        // Anything else (wrong epoch, garbage, a timed-out
                        // probe) is dropped on the floor.
                        _ => {}
                    }
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    }

    /// Ping every peer on a cadence, carrying this side's delivery count
    /// as the ack. A peer silent past the timeout gets one reconnect
    /// probe (its connection is cut, forcing a resume round-trip);
    /// still silent after that, it is declared failed.
    fn heartbeat_loop(&self) {
        loop {
            std::thread::sleep(HEARTBEAT_EVERY);
            if self.closing.load(Ordering::SeqCst) {
                return;
            }
            let now = self.elapsed_ms();
            let mut dead = Vec::new();
            for peer in 0..self.np {
                if peer == self.me
                    || self.peers[peer].is_none()
                    || self.finished[peer].load(Ordering::SeqCst)
                    || self.failed[peer].load(Ordering::SeqCst)
                {
                    continue;
                }
                let ping = encode_frame(&Frame::Ping {
                    seen: self.recv_seq[peer].load(Ordering::SeqCst),
                });
                if self.write_to(peer, &ping, false) {
                    if let Some(hub) = &self.metrics {
                        hub.incr(self.me, CounterId::NetHeartbeats);
                        let now_ns = (self.start.elapsed().as_nanos() as u64).max(1);
                        // Only arm a new RTT sample if none is outstanding,
                        // so a slow round isn't shortened by a later ping.
                        let _ = self.pending_ping_ns[peer].compare_exchange(
                            0,
                            now_ns,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                    }
                }
                let heard = self.last_heard[peer].load(Ordering::Relaxed);
                if now.saturating_sub(heard) > PEER_TIMEOUT.as_millis() as u64 {
                    if !self.probed[peer].swap(true, Ordering::Relaxed) {
                        // Probe: cut the (possibly half-open) connection
                        // so the reader runs a reconnect round-trip, and
                        // restart the silence clock for its verdict.
                        if let Some(writer) = &self.peers[peer] {
                            writer.disconnect();
                        }
                        self.last_heard[peer].store(now, Ordering::Relaxed);
                    } else {
                        dead.push(peer);
                    }
                }
            }
            for peer in dead {
                if !self.closing.load(Ordering::SeqCst) {
                    self.note_failed(peer);
                }
            }
        }
    }
}

/// Wall clock as Unix nanoseconds (0 on a pre-epoch clock).
fn unix_now_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

/// One process's handle on a TCP-meshed world: implements [`Fabric`] for
/// the single rank this process hosts.
pub struct TcpFabric {
    inner: Arc<Inner>,
}

impl TcpFabric {
    /// Join world `spec` as rank `me`: bind a listener, rendezvous through
    /// `server`, and establish the peer mesh. Blocks until every
    /// participating rank is connected.
    pub fn establish(server: &str, me: usize, spec: &WorldSpec) -> Result<TcpFabric> {
        Self::establish_with_chaos(server, me, spec, None)
    }

    /// [`establish`](Self::establish), with an optional wire-chaos plan
    /// whose per-connection streams damage this rank's outgoing batches.
    pub fn establish_with_chaos(
        server: &str,
        me: usize,
        spec: &WorldSpec,
        chaos: Option<NetChaosPlan>,
    ) -> Result<TcpFabric> {
        let sock_err = |what: &str| {
            let what = what.to_string();
            move |e: std::io::Error| Error::Codec(format!("{what}: {e}"))
        };
        let listener = TcpListener::bind("127.0.0.1:0").map_err(sock_err("bind listener"))?;
        let my_addr = listener
            .local_addr()
            .map_err(sock_err("listener address"))?
            .to_string();
        let table = rendezvous::register(server, spec.epoch, me, spec.np, &my_addr)?;
        Self::from_table(listener, table, me, spec, chaos)
    }

    /// Build the peer mesh from an already-released rendezvous table (the
    /// shm provider registers once — with a `#shm:` advertisement — and
    /// hands the table here when the world turns out not to be
    /// co-located; the suffix is stripped before dialing).
    pub fn from_table(
        listener: TcpListener,
        table: Vec<String>,
        me: usize,
        spec: &WorldSpec,
        chaos: Option<NetChaosPlan>,
    ) -> Result<TcpFabric> {
        let np = spec.np;
        let sock_err = |what: &str| {
            let what = what.to_string();
            move |e: std::io::Error| Error::Codec(format!("{what}: {e}"))
        };

        // One connection per peer: dial every lower rank, accept every
        // higher one. Dials can't race the listeners — every rank bound
        // its listener before registering, and the table only exists once
        // everyone registered.
        let mut streams: Vec<Option<TcpStream>> = (0..np).map(|_| None).collect();
        for (peer, addr) in table.iter().enumerate().take(me) {
            let addr = crate::shm::tcp_part(addr);
            let mut stream = TcpStream::connect(addr)
                .map_err(sock_err(&format!("dial rank {peer} at {addr}")))?;
            crate::frame::write_frame(
                &mut stream,
                &Frame::Hello {
                    epoch: spec.epoch,
                    rank: me as u64,
                },
            )
            .map_err(sock_err(&format!("handshake with rank {peer}")))?;
            streams[peer] = Some(stream);
        }
        for _ in me + 1..np {
            let (mut stream, _) = listener.accept().map_err(sock_err("accept peer"))?;
            match read_frame(&mut stream)? {
                Some(Frame::Hello { epoch, rank }) if epoch == spec.epoch => {
                    let rank = rank as usize;
                    if rank <= me || rank >= np || streams[rank].is_some() {
                        return Err(Error::Codec(format!("bad handshake from rank {rank}")));
                    }
                    streams[rank] = Some(stream);
                }
                other => {
                    return Err(Error::Codec(format!(
                        "expected Hello for epoch {}, got {other:?}",
                        spec.epoch
                    )));
                }
            }
        }
        for stream in streams.iter().flatten() {
            let _ = stream.set_nodelay(true);
            // Bound mid-frame reads: a peer that stalls inside a record
            // must hand the reader back to the reconnect machinery, not
            // pin it in `read` forever.
            let _ = stream.set_read_timeout(Some(MID_FRAME_TIMEOUT));
        }

        let read_halves: Vec<Option<TcpStream>> = streams
            .iter()
            .map(|s| {
                s.as_ref()
                    .map(|s| s.try_clone().expect("clone established stream"))
            })
            .collect();
        let inner = Arc::new(Inner {
            me,
            np,
            epoch: spec.epoch,
            names: (0..np)
                .map(|r| format!("node-{:02}", r / spec.ranks_per_node + 1))
                .collect(),
            addrs: table,
            listener,
            poll_interval: spec.poll_interval,
            tracer: spec.tracer.clone(),
            metrics: spec.metrics.clone(),
            fault: spec.fault.clone().map(|plan| FaultState::new(plan, np)),
            mailbox: match &spec.metrics {
                Some(hub) => Mailbox::with_metrics(hub.clone(), me),
                None => Mailbox::new(),
            },
            send_seq: AtomicU64::new(0),
            finished: (0..np).map(|_| AtomicBool::new(false)).collect(),
            failed: (0..np).map(|_| AtomicBool::new(false)).collect(),
            peers: streams
                .into_iter()
                .enumerate()
                .map(|(peer, s)| {
                    s.map(|s| {
                        PeerWriter::new(
                            s,
                            spec.metrics.clone().map(|hub| (hub, me, peer)),
                            chaos.map(|plan| plan.connection(me as u64, peer as u64)),
                        )
                    })
                })
                .collect(),
            recv_seq: (0..np).map(|_| AtomicU64::new(0)).collect(),
            probed: (0..np).map(|_| AtomicBool::new(false)).collect(),
            pending: Mutex::new((0..np).map(|_| None).collect()),
            pending_cv: Condvar::new(),
            last_heard: (0..np).map(|_| AtomicU64::new(0)).collect(),
            pending_ping_ns: (0..np).map(|_| AtomicU64::new(0)).collect(),
            start: Instant::now(),
            agreements: Mutex::new(HashMap::new()),
            agree_cv: Condvar::new(),
            clock_reply: Mutex::new(None),
            clock_cv: Condvar::new(),
            closing: AtomicBool::new(false),
        });
        for (peer, stream) in read_halves.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("net-reader-{peer}"))
                .spawn(move || inner.reader_cycle(peer, stream))
                .map_err(sock_err("spawn reader"))?;
        }
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("net-heartbeat".into())
                .spawn(move || inner.heartbeat_loop())
                .map_err(sock_err("spawn heartbeat"))?;
        }
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || inner.accept_loop())
                .map_err(sock_err("spawn acceptor"))?;
        }
        // With tracing on, non-zero ranks estimate their wall-clock
        // offset to rank 0 over the fresh mesh (rank 0's reader answers
        // probes), so per-rank trace exports can carry an aligned
        // timebase anchor. Untraced worlds skip the probe round trips.
        if spec.tracer.is_some() && me != 0 && np > 1 {
            crate::set_clock_offset_ns(inner.estimate_clock_offset());
        }
        let fabric = TcpFabric { inner };
        // Traced worlds also rendezvous on a start gate so every rank
        // enters the program body together. Without it, launch-order
        // stagger plus the serial clock-probe round put milliseconds of
        // lane offset in the merged timeline — late arrival, not message
        // latency, would gate the analyzer's critical path.
        if spec.tracer.is_some() && np > 1 {
            traced_start_gate(&fabric, me, np, spec.epoch);
        }
        Ok(fabric)
    }

    /// Abruptly close every peer connection without announcing Finish —
    /// what a killed process looks like from the outside. Test/diagnostic
    /// aid for exercising the failure-detection path in-process. Unlike
    /// [`disrupt`](Self::disrupt), this also stops the reconnect
    /// machinery, so peers exhaust their budgets and fail this rank.
    pub fn sever(&self) {
        self.inner.closing.store(true, Ordering::SeqCst);
        for writer in self.inner.peers.iter().flatten() {
            writer.terminal(true);
        }
    }

    /// Cut the connection to one peer *without* giving up on it — a
    /// transient network fault. Both sides' readers see the socket die
    /// and run the reconnect/resume protocol; queued sequenced frames
    /// are replayed. Test/diagnostic aid.
    pub fn disrupt(&self, peer: usize) {
        if let Some(writer) = &self.inner.peers[peer] {
            writer.disconnect();
        }
    }
}

/// Line every rank up at a start gate before a traced world's body runs:
/// one agreement round on a reserved key (no comm ever uses
/// `comm_id == u64::MAX`), then a wait until a common wall-clock deadline.
/// Each rank contributes its arrival time on rank 0's clock plus a margin
/// and everyone waits out the max, so release skew is bounded by
/// clock-offset error rather than frame-propagation and condvar-wakeup
/// latency. The round is sequenced on the wire (chaos-safe) and a dead
/// rank can't hang it; a rank arriving after the deadline simply doesn't
/// wait.
pub(crate) fn traced_start_gate(fabric: &dyn Fabric, me: usize, np: usize, epoch: u64) {
    let wall = || {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as i128)
            .unwrap_or(0)
    };
    // Covers the last arriver's Agree frame reaching every peer.
    const GATE_MARGIN_NS: i128 = 2_000_000;
    let offset = i128::from(crate::clock_offset_ns());
    let group: Vec<usize> = (0..np).collect();
    let value = (wall() + offset + GATE_MARGIN_NS).max(0) as u64;
    let slot = fabric.agreement((u64::MAX, 0, epoch), me, value, &group);
    let deadline = slot.values().copied().max().unwrap_or(0) as i128;
    loop {
        let left = deadline - (wall() + offset);
        if left <= 0 {
            break;
        }
        if left > 500_000 {
            std::thread::sleep(std::time::Duration::from_nanos((left - 300_000) as u64));
        } else {
            std::hint::spin_loop();
        }
    }
    if std::env::var("PMRUN_GATE_DEBUG").is_ok() {
        eprintln!("[gate] rank {me} released at wall {}", wall());
    }
}

impl Fabric for TcpFabric {
    fn np(&self) -> usize {
        self.inner.np
    }

    fn rank_name(&self, world_rank: usize) -> &str {
        &self.inner.names[world_rank]
    }

    fn poll_interval(&self) -> Duration {
        self.inner.poll_interval
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.inner.tracer.as_ref()
    }

    fn metrics(&self) -> Option<&MetricsHub> {
        self.inner.metrics.as_ref()
    }

    fn record_msg(&self, _event: MsgEvent) {
        // The legacy message log backs `run_traced`, which is pinned to
        // the thread backend; structured tracing covers the network path.
    }

    fn next_send_seq(&self, _me: usize) -> u64 {
        self.inner.send_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn fault_op(&self, me: usize, op: &'static str) -> Result<()> {
        if let Some(fault) = &self.inner.fault {
            if let Err(e) = fault.record_op(me, op) {
                self.mark_failed(me);
                return Err(e);
            }
        }
        Ok(())
    }

    fn chaos_decision(&self, me: usize) -> Option<ChaosDecision> {
        self.inner.fault.as_ref().map(|fault| fault.decide(me))
    }

    fn shares_address_space(&self, me: usize, dest: usize) -> bool {
        // Every peer is a separate process; only a rank's sends to itself
        // stay in this address space (delivered into the local mailbox).
        me == dest
    }

    fn inline_payloads(&self) -> bool {
        // Payloads cross process boundaries as bytes anyway; small ones
        // should skip the Arc round-trip and ride inline in the envelope.
        true
    }

    fn rank_alive(&self, world_rank: usize) -> bool {
        !self.inner.finished[world_rank].load(Ordering::SeqCst)
            && !self.inner.failed[world_rank].load(Ordering::SeqCst)
    }

    fn rank_failed(&self, world_rank: usize) -> bool {
        self.inner.failed[world_rank].load(Ordering::SeqCst)
    }

    fn mark_failed(&self, world_rank: usize) {
        let first_verdict = !self.inner.failed[world_rank].swap(true, Ordering::SeqCst);
        {
            let _lock = self.inner.agreements.lock();
            self.inner.agree_cv.notify_all();
        }
        // Own failures (fault-plan kill, panic) are announced so every
        // peer converges without waiting for a timeout. Verdicts *about*
        // peers stay local — each process discovers a dead peer through
        // its own connection.
        if world_rank == self.inner.me && first_verdict {
            self.inner.broadcast(&Frame::Failed {
                rank: world_rank as u64,
            });
        }
    }

    fn finish(&self, me: usize) {
        self.inner.finished[me].store(true, Ordering::SeqCst);
        {
            let _lock = self.inner.agreements.lock();
            self.inner.agree_cv.notify_all();
        }
        self.inner.broadcast(&Frame::Finish { rank: me as u64 });
        // Bounded drain: give peers a chance to ack the frames still in
        // flight (this Finish included) — their acks ride their
        // heartbeats — and let a reconnect serve a chaos cut that ate
        // the tail. Without this, a cut at the finish line would turn a
        // clean exit into a spurious failure verdict on the peer.
        let deadline = Instant::now() + FINISH_DRAIN;
        while Instant::now() < deadline {
            let drained = (0..self.inner.np).all(|p| {
                p == me
                    || self.inner.finished[p].load(Ordering::SeqCst)
                    || self.inner.failed[p].load(Ordering::SeqCst)
                    || self.inner.peers[p]
                        .as_ref()
                        .map(|w| w.retained() == 0)
                        .unwrap_or(true)
            });
            if drained {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.closing.store(true, Ordering::SeqCst);
        // Half-close every connection: peers read our Finish, then a
        // clean EOF, and their reader threads wind down; ours exit when
        // the peers do the same. No sockets or threads outlive the world.
        for writer in self.inner.peers.iter().flatten() {
            writer.half_close();
        }
    }

    fn deliver(
        &self,
        _me: usize,
        dest: usize,
        env: Envelope,
        overtake: usize,
        duplicate: bool,
    ) -> bool {
        if dest == self.inner.me {
            let mailbox = &self.inner.mailbox;
            if duplicate {
                mailbox.deliver_displaced(env.clone(), overtake);
                return !mailbox.deliver_displaced(env, 0);
            }
            mailbox.deliver_displaced(env, overtake);
            return false;
        }
        let record = encode_frame(&Frame::Env {
            comm_id: env.comm_id,
            src: env.src as u64,
            tag: env.tag,
            type_name: env.type_name.to_string(),
            count: env.count as u64,
            seq: env.seq,
            needs_ack: env.needs_ack,
            overtake: overtake as u32,
            payload: env.payload.to_wire().to_vec(),
        });
        let mut ok = self.inner.write_to(dest, &record, true);
        if ok && duplicate {
            // Transmit a second copy; the receiving mailbox dedups it, so
            // the swallow isn't observable on this side.
            ok = self.inner.write_to(dest, &record, true);
        }
        if !ok && !self.inner.finished[dest].load(Ordering::SeqCst) {
            self.inner.note_failed(dest);
        }
        false
    }

    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        assert_eq!(
            world_rank, self.inner.me,
            "a TCP fabric only hosts its own rank's mailbox"
        );
        &self.inner.mailbox
    }

    fn publish_wait(&self, _me: usize, _record: WaitRecord) {
        // No global view: wait records have no cross-process audience.
    }

    fn clear_wait(&self, _me: usize) {}

    fn deadlocked(&self, _me: usize) -> Option<String> {
        // A process can't prove a cross-process waits-for cycle; never
        // report a false positive. Finished-sender deadlocks still
        // resolve via `rank_alive` (Finish frames).
        None
    }

    fn agreement(&self, key: AgreeKey, me: usize, value: u64, group: &[usize]) -> AgreeSlot {
        {
            let mut slots = self.inner.agreements.lock();
            slots.entry(key).or_default().insert(me, value);
        }
        self.inner.broadcast(&Frame::Agree {
            comm_id: key.0,
            kind: key.1,
            seq: key.2,
            rank: me as u64,
            value,
        });
        let mut slots = self.inner.agreements.lock();
        loop {
            let slot = slots.entry(key).or_default();
            let done = group.iter().all(|&w| {
                slot.contains_key(&w)
                    || self.inner.failed[w].load(Ordering::SeqCst)
                    || self.inner.finished[w].load(Ordering::SeqCst)
            });
            if done {
                return slot.clone();
            }
            self.inner
                .agree_cv
                .wait_for(&mut slots, self.inner.poll_interval);
        }
    }

    fn prune_comm(&self, _me: usize, comm_id: u64) {
        self.inner.mailbox.prune_comm(comm_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternlets_mp::status::{SourceSel, TagSel};

    fn spec(np: usize, epoch: u64) -> WorldSpec {
        WorldSpec {
            np,
            ranks_per_node: 1,
            fault: None,
            poll_interval: Duration::from_millis(5),
            tracer: None,
            metrics: None,
            epoch,
        }
    }

    /// Establish a full mesh of `np` fabrics inside one test process —
    /// each plays a different world rank, exactly as `np` processes would.
    fn mesh(np: usize, epoch: u64) -> Vec<TcpFabric> {
        mesh_with(np, epoch, None, false)
    }

    /// Like [`mesh`], but optionally armed with a chaos plan and a
    /// per-rank metrics hub.
    fn mesh_with(
        np: usize,
        epoch: u64,
        chaos: Option<NetChaosPlan>,
        metrics: bool,
    ) -> Vec<TcpFabric> {
        let server = rendezvous::serve().unwrap().to_string();
        let handles: Vec<_> = (0..np)
            .map(|me| {
                let server = server.clone();
                std::thread::spawn(move || {
                    let mut spec = spec(np, epoch);
                    if metrics {
                        spec.metrics = Some(MetricsHub::with_lanes(np));
                    }
                    TcpFabric::establish_with_chaos(&server, me, &spec, chaos).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn env(comm_id: u64, src: usize, tag: i32, seq: u64) -> Envelope {
        Envelope {
            comm_id,
            src,
            tag,
            type_name: "i64",
            count: 1,
            payload: Payload::Bytes(bytes::Bytes::from(vec![7, 0, 0, 0, 0, 0, 0, 0])),
            seq,
            needs_ack: false,
        }
    }

    fn recv_one(fabric: &TcpFabric, rank: usize, src: usize, tag: i32) -> Envelope {
        fabric
            .mailbox(rank)
            .recv_match(
                0,
                SourceSel::Rank(src),
                TagSel::Tag(tag),
                Duration::from_millis(5),
                || None,
                || {},
            )
            .unwrap()
    }

    #[test]
    fn envelope_crosses_the_socket_and_matches() {
        let fabrics = mesh(2, 0);
        fabrics[0].deliver(0, 1, env(0, 0, 5, 0), 0, false);
        let got = recv_one(&fabrics[1], 1, 0, 5);
        assert_eq!(got.tag, 5);
        assert_eq!(got.type_name, "i64");
        assert_eq!(got.payload.len(), 8);
        for f in &fabrics {
            f.finish(f.inner.me);
        }
    }

    #[test]
    fn duplicate_transmissions_dedup_on_the_receiver() {
        let fabrics = mesh(2, 1);
        fabrics[0].deliver(0, 1, env(0, 0, 9, 0), 0, true);
        fabrics[0].deliver(0, 1, env(0, 0, 9, 1), 0, false);
        // Both messages arrive exactly once, in order.
        for want_seq in [0, 1] {
            let got = recv_one(&fabrics[1], 1, 0, 9);
            assert_eq!(got.seq, want_seq);
        }
        assert!(fabrics[1].mailbox(1).is_empty(), "duplicate was swallowed");
        for f in &fabrics {
            f.finish(f.inner.me);
        }
    }

    #[test]
    fn finish_reads_as_clean_exit_not_failure() {
        let fabrics = mesh(2, 2);
        fabrics[0].finish(0);
        // Rank 1 sees rank 0 finished (not failed) within a poll or two.
        let deadline = Instant::now() + Duration::from_secs(5);
        while fabrics[1].rank_alive(0) {
            assert!(Instant::now() < deadline, "Finish frame never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!fabrics[1].rank_failed(0), "clean exit must not be failure");
        fabrics[1].finish(1);
    }

    #[test]
    fn abrupt_disconnect_marks_the_peer_failed() {
        let fabrics = mesh(3, 3);
        fabrics[0].sever();
        // Reconnect attempts run their budget out first, then the
        // verdict lands; the deadline leaves room for both.
        let deadline = Instant::now() + Duration::from_secs(8);
        for survivor in [1, 2] {
            while !fabrics[survivor].rank_failed(0) {
                assert!(Instant::now() < deadline, "EOF verdict never arrived");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        assert!(!fabrics[1].rank_failed(2), "survivors stay unfailed");
        for f in &fabrics[1..] {
            f.finish(f.inner.me);
        }
    }

    #[test]
    fn agreement_completes_across_the_mesh() {
        let fabrics = mesh(3, 4);
        let group = [0, 1, 2];
        let handles: Vec<_> = fabrics
            .iter()
            .enumerate()
            .map(|(me, f)| {
                std::thread::spawn({
                    let inner = Arc::clone(&f.inner);
                    move || {
                        let f = TcpFabric { inner };
                        f.agreement((0, 0, 0), me, me as u64 + 10, &group)
                    }
                })
            })
            .collect();
        for (me, h) in handles.into_iter().enumerate() {
            let slot = h.join().unwrap();
            assert_eq!(slot.len(), 3, "rank {me} saw all contributions");
            assert_eq!(slot[&2], 12);
        }
        for f in &fabrics {
            f.finish(f.inner.me);
        }
    }

    #[test]
    fn agreement_excludes_a_dead_member() {
        let fabrics = mesh(2, 5);
        fabrics[1].sever(); // rank 1 "dies" without contributing
        let slot = fabrics[0].agreement((0, 1, 0), 0, 42, &[0, 1]);
        assert_eq!(slot.len(), 1, "only the survivor contributed");
        assert_eq!(slot[&0], 42);
        fabrics[0].finish(0);
    }

    #[test]
    fn type_name_interning_reuses_known_statics() {
        assert_eq!(intern_type_name("i64"), "i64");
        let a = intern_type_name("custom::Type");
        let b = intern_type_name("custom::Type");
        assert!(std::ptr::eq(a, b), "unknown names leak exactly once");
    }

    /// A transient connection cut is invisible to the application: the
    /// frames queued across the cut are replayed on resume, in order,
    /// exactly once, and the reconnect shows up in the metrics.
    #[test]
    fn connection_cut_resumes_without_loss_or_duplication() {
        let fabrics = mesh_with(2, 6, None, true);
        for seq in 0..5u64 {
            fabrics[0].deliver(0, 1, env(0, 0, 7, seq), 0, false);
        }
        // Cut the 0↔1 socket out from under both sides.
        fabrics[0].disrupt(1);
        for seq in 5..10u64 {
            fabrics[0].deliver(0, 1, env(0, 0, 7, seq), 0, false);
        }
        // Every message arrives, in order, exactly once.
        for want_seq in 0..10u64 {
            let got = recv_one(&fabrics[1], 1, 0, 7);
            assert_eq!(got.seq, want_seq, "sequence intact across the cut");
        }
        assert!(fabrics[1].mailbox(1).is_empty(), "no duplicates surfaced");
        // At least one side metered the reconnect.
        let reconnects: u64 = fabrics
            .iter()
            .map(|f| {
                f.inner
                    .metrics
                    .as_ref()
                    .unwrap()
                    .snapshot()
                    .total(CounterId::NetReconnects)
            })
            .sum();
        assert!(reconnects >= 1, "the cut produced a metered reconnect");
        assert!(!fabrics[0].rank_failed(1), "a resumed cut is not a failure");
        assert!(!fabrics[1].rank_failed(0), "a resumed cut is not a failure");
        for f in &fabrics {
            f.finish(f.inner.me);
        }
    }

    /// Regression: a peer that stalls *mid-frame* (header written, body
    /// never arrives, socket held open) must hand the reader back within
    /// the mid-frame timeout — not pin it in `read` past the reconnect
    /// budget, which is what an unbounded `read_exact` did.
    #[test]
    fn stalled_mid_frame_peer_frees_the_reader_within_budget() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let record = encode_frame(&Frame::Ping { seen: 1 });
            // Header plus two body bytes, then silence with the socket
            // open — the shape of a wedged peer, not a dead one.
            use std::io::Write;
            stream.write_all(&record[..10]).unwrap();
            std::thread::sleep(MID_FRAME_TIMEOUT + Duration::from_millis(500));
            stream
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(MID_FRAME_TIMEOUT)).unwrap();
        let started = Instant::now();
        let err = read_frame(&mut stream).unwrap_err();
        let waited = started.elapsed();
        assert!(
            err.to_string().contains(crate::frame::MID_FRAME_STALL),
            "stall verdict, got: {err}"
        );
        assert!(
            waited < RECONNECT_BUDGET,
            "reader freed within the reconnect budget, took {waited:?}"
        );
        drop(writer.join().unwrap());
    }

    /// Under a seeded chaos plan that cuts, truncates and corrupts
    /// batches, a message stream still arrives complete and ordered —
    /// the CRC catches damage and the resume protocol replays losses.
    #[test]
    fn chaotic_wire_still_delivers_everything_in_order() {
        let mut plan = NetChaosPlan::seeded(0xC0FFEE);
        plan.cut_after = 3;
        plan.cut_prob = 0.25;
        plan.truncate_prob = 0.1;
        plan.corrupt_prob = 0.1;
        plan.delay_up_to_ms = 1;
        let fabrics = mesh_with(2, 7, Some(plan), true);
        const N: u64 = 60;
        let sender = {
            let inner = Arc::clone(&fabrics[0].inner);
            std::thread::spawn(move || {
                let f = TcpFabric { inner };
                for seq in 0..N {
                    f.deliver(0, 1, env(0, 0, 11, seq), 0, false);
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };
        for want_seq in 0..N {
            let got = recv_one(&fabrics[1], 1, 0, 11);
            assert_eq!(got.seq, want_seq, "chaos must not reorder or drop");
        }
        sender.join().unwrap();
        let total = |id: CounterId| -> u64 {
            fabrics
                .iter()
                .map(|f| f.inner.metrics.as_ref().unwrap().snapshot().total(id))
                .sum()
        };
        assert!(
            total(CounterId::NetReconnects) >= 1,
            "the chaos plan produced at least one reconnect"
        );
        assert!(
            total(CounterId::NetFramesReplayed) >= 1,
            "cut batches were replayed from the ring"
        );
        assert!(
            !fabrics[1].rank_failed(0),
            "chaos never escalated to failure"
        );
        for f in &fabrics {
            f.finish(f.inner.me);
        }
    }
}
