//! The TCP fabric: one process's slice of a world, over a socket mesh.
//!
//! Every participating rank binds a loopback listener, registers it with
//! the job's rendezvous server, and — once the full address table is back
//! — establishes one TCP connection per peer (the higher rank dials the
//! lower rank's listener, so each pair gets exactly one socket). All
//! traffic to a peer travels on that connection as [`Frame`]s; TCP's
//! per-stream ordering carries MPI's non-overtaking guarantee across the
//! process boundary exactly as the in-process queue order does.
//!
//! ## Failure detection
//!
//! Ranks announce a normal exit with a `Finish` frame before shutting
//! their write side down, so EOF-after-Finish reads as a clean exit. EOF
//! *without* Finish — the peer process was killed — marks the peer
//! failed, surfacing to the application as the same
//! [`Error::RankFailed`](patternlets_core::Error::RankFailed) the
//! fault-injection layer produces; the ULFM-style `agree`/`shrink`
//! recovery path works unchanged across processes. A heartbeat thread
//! additionally pings every peer and fails those silent past
//! [`PEER_TIMEOUT`] (a half-open connection on a real network; nearly
//! unreachable on loopback).
//!
//! ## What the thread backend has that this one doesn't
//!
//! The waits-for deadlock *detector* needs a global view of every rank's
//! blocked receive; a process only sees its own. [`Fabric::deadlocked`]
//! therefore always answers `None` here (never a false positive) — a
//! genuinely cyclic deadlock hangs under `pmrun` just as it would under
//! real MPI, while the common classroom case (receiving from a rank that
//! exited) still resolves, because `Finish` frames feed the same
//! every-sender-finished check the thread backend uses.

use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use patternlets_core::{Error, Result};
use patternlets_metrics::{CounterId, HistId, MetricsHub};
use patternlets_mp::envelope::{Envelope, Payload};
use patternlets_mp::fabric::{AgreeKey, AgreeSlot, Fabric, WorldSpec};
use patternlets_mp::fault::{ChaosDecision, FaultState};
use patternlets_mp::mailbox::Mailbox;
use patternlets_mp::world::{MsgEvent, WaitRecord};
use patternlets_trace::Tracer;

use crate::frame::{encode_frame, read_frame, Frame};
use crate::rendezvous;

/// How often the heartbeat thread pings every live peer.
pub const HEARTBEAT_EVERY: Duration = Duration::from_millis(100);

/// A peer silent this long (no frame, no ping) while not finished is
/// declared failed. EOF detection fires far earlier for killed processes;
/// this backstop only matters for half-open connections.
pub const PEER_TIMEOUT: Duration = Duration::from_secs(10);

/// `TYPE_NAME`s of the built-in [`patternlets_mp::Datatype`] impls, used
/// to intern wire type names back into `&'static str` without leaking.
const KNOWN_TYPE_NAMES: &[&str] = &[
    "i32",
    "i64",
    "u32",
    "u64",
    "f32",
    "f64",
    "u8",
    "bool",
    "usize",
    "String",
    "(T, usize)",
];

/// Intern a wire type name. Built-in names map to their static constants;
/// unknown (user-defined `Datatype`) names are leaked once and cached, so
/// repeated traffic of the same type allocates nothing.
fn intern_type_name(name: &str) -> &'static str {
    if let Some(known) = KNOWN_TYPE_NAMES.iter().find(|&&k| k == name) {
        return known;
    }
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA.lock();
    if let Some(cached) = extra.iter().find(|&&k| k == name) {
        return cached;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

/// Most frames one flush pass will hand to a single vectored write.
/// Bounds both the `IoSlice` array and how long one sender can be stuck
/// flushing other senders' traffic.
const MAX_COALESCED: usize = 64;

/// Records queued on a peer's write side, plus whether some thread is
/// currently draining them.
struct SendQueue {
    records: VecDeque<Vec<u8>>,
    flushing: bool,
}

/// One peer connection's write side: a combining writer. A sender
/// enqueues its record and, if nobody is flushing, becomes the flusher —
/// draining the queue in batches of up to [`MAX_COALESCED`] records per
/// vectored write. Records enqueued while a flush is in progress ride
/// along in the flusher's next batch, so under contention many small
/// frames (heartbeats, acks, collective rounds) coalesce into one
/// syscall; an uncontended sender writes immediately, so nothing ever
/// waits on a timer (flush-on-idle: the queue drains to empty before the
/// flusher retires). `set_nodelay(true)` stays on — batching happens
/// here, above the socket, not in Nagle's algorithm.
struct PeerWriter {
    stream: Mutex<TcpStream>,
    queue: Mutex<SendQueue>,
    /// Raised by whichever flusher first hits a write error. A sender
    /// whose record another thread flushes can't see that write's result
    /// directly; it reads the verdict here on its next send (failure
    /// detection is bounded by the heartbeat cadence anyway).
    broken: AtomicBool,
    /// `(hub, my lane, peer lane)` when metrics are on: batch sizes and
    /// frame counts go to my lane, bytes to the destination peer's lane.
    metrics: Option<(MetricsHub, usize, usize)>,
}

impl PeerWriter {
    fn new(stream: TcpStream, metrics: Option<(MetricsHub, usize, usize)>) -> Self {
        PeerWriter {
            stream: Mutex::new(stream),
            queue: Mutex::new(SendQueue {
                records: VecDeque::new(),
                flushing: false,
            }),
            broken: AtomicBool::new(false),
            metrics,
        }
    }

    /// Enqueue one encoded record and make sure it gets flushed. Returns
    /// `false` once the connection is known broken.
    fn send(&self, record: &[u8]) -> bool {
        if self.broken.load(Ordering::SeqCst) {
            return false;
        }
        {
            let mut queue = self.queue.lock();
            queue.records.push_back(record.to_vec());
            if queue.flushing {
                // The active flusher will pick this record up before it
                // retires; nothing more to do here.
                return true;
            }
            queue.flushing = true;
        }
        loop {
            let batch: Vec<Vec<u8>> = {
                let mut queue = self.queue.lock();
                if queue.records.is_empty() {
                    queue.flushing = false;
                    return !self.broken.load(Ordering::SeqCst);
                }
                let n = queue.records.len().min(MAX_COALESCED);
                queue.records.drain(..n).collect()
            };
            if !self.write_batch(&batch) {
                self.broken.store(true, Ordering::SeqCst);
                let mut queue = self.queue.lock();
                queue.records.clear();
                queue.flushing = false;
                return false;
            }
        }
    }

    /// Write a batch of records with vectored writes, advancing across
    /// short writes manually (`write_all_vectored` is not yet stable).
    fn write_batch(&self, batch: &[Vec<u8>]) -> bool {
        use std::io::{ErrorKind, IoSlice, Write};
        let mut stream = self.stream.lock();
        let mut idx = 0; // first record not fully written
        let mut off = 0; // bytes of batch[idx] already written
        while idx < batch.len() {
            let mut slices = Vec::with_capacity(batch.len() - idx);
            slices.push(IoSlice::new(&batch[idx][off..]));
            for record in &batch[idx + 1..] {
                slices.push(IoSlice::new(record));
            }
            let mut n = match stream.write_vectored(&slices) {
                Ok(0) => return false,
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            };
            while n > 0 {
                let remaining = batch[idx].len() - off;
                if n >= remaining {
                    n -= remaining;
                    idx += 1;
                    off = 0;
                } else {
                    off += n;
                    n = 0;
                }
            }
        }
        if let Some((hub, me, peer)) = &self.metrics {
            hub.observe(*me, HistId::WRITEV_BATCH_FRAMES, batch.len() as u64);
            hub.add(*me, CounterId::NetFramesSent, batch.len() as u64);
            let bytes: u64 = batch.iter().map(|r| r.len() as u64).sum();
            hub.add(*peer, CounterId::NetBytesToPeer, bytes);
        }
        true
    }

    /// Shut the underlying socket down (see [`TcpFabric::sever`] and
    /// [`Fabric::finish`]); write attempts afterwards fail and mark the
    /// writer broken.
    fn shutdown(&self, how: Shutdown) {
        let _ = self.stream.lock().shutdown(how);
    }
}

struct Inner {
    me: usize,
    np: usize,
    names: Vec<String>,
    poll_interval: Duration,
    tracer: Option<Tracer>,
    metrics: Option<MetricsHub>,
    fault: Option<FaultState>,
    /// This process's rank's mailbox — the only one a `Comm` here reads.
    mailbox: Mailbox,
    send_seq: AtomicU64,
    finished: Vec<AtomicBool>,
    failed: Vec<AtomicBool>,
    /// Write sides, indexed by peer world rank (`None` at `me`).
    peers: Vec<Option<PeerWriter>>,
    /// Milliseconds (since `start`) each peer was last heard from.
    last_heard: Vec<AtomicU64>,
    /// Nanoseconds (since `start`, 0 = none pending) of the oldest
    /// unanswered heartbeat ping per peer; the next frame heard from the
    /// peer closes it into the RTT histogram. There is no dedicated pong
    /// frame — peers talk at least every heartbeat interval, so this
    /// measures ping-to-next-frame time.
    pending_ping_ns: Vec<AtomicU64>,
    start: Instant,
    agreements: Mutex<HashMap<AgreeKey, AgreeSlot>>,
    agree_cv: Condvar,
    /// Raised by `finish`: background threads stop writing.
    closing: AtomicBool,
}

impl Inner {
    fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Write a pre-encoded record to one peer through its combining
    /// writer. `false` when the connection is known broken and the peer
    /// never finished (caller decides whether that's a failure verdict).
    fn write_to(&self, peer: usize, record: &[u8]) -> bool {
        let Some(writer) = &self.peers[peer] else {
            return true;
        };
        writer.send(record)
    }

    /// Send `frame` to every peer; peers whose connection is dead and who
    /// never announced Finish are marked failed (local verdict — every
    /// process discovers a dead peer through its own socket).
    fn broadcast(&self, frame: &Frame) {
        let record = encode_frame(frame);
        let mut dead = Vec::new();
        for peer in 0..self.np {
            if peer == self.me || self.peers[peer].is_none() {
                continue;
            }
            if !self.write_to(peer, &record) && !self.finished[peer].load(Ordering::SeqCst) {
                dead.push(peer);
            }
        }
        for peer in dead {
            self.note_failed(peer);
        }
    }

    /// Record a failure verdict locally and wake everything that must
    /// re-examine membership. Does not gossip: each process reaches its
    /// own verdict through its own connection to the dead peer.
    fn note_failed(&self, rank: usize) {
        if self.failed[rank].swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(hub) = &self.metrics {
            hub.incr(rank, CounterId::NetRankFailures);
        }
        let _lock = self.agreements.lock();
        self.agree_cv.notify_all();
    }

    fn handle_frame(&self, peer: usize, frame: Frame) {
        self.last_heard[peer].store(self.elapsed_ms(), Ordering::Relaxed);
        if let Some(hub) = &self.metrics {
            // Any frame from a peer with a ping outstanding closes the
            // RTT sample (ping-to-next-frame; see `pending_ping_ns`).
            let sent = self.pending_ping_ns[peer].swap(0, Ordering::Relaxed);
            if sent != 0 {
                let now = self.start.elapsed().as_nanos() as u64;
                hub.observe(self.me, HistId::HEARTBEAT_RTT_NS, now.saturating_sub(sent));
            }
        }
        match frame {
            Frame::Env {
                comm_id,
                src,
                tag,
                type_name,
                count,
                seq,
                needs_ack,
                overtake,
                payload,
            } => {
                let env = Envelope {
                    comm_id,
                    src: src as usize,
                    tag,
                    type_name: intern_type_name(&type_name),
                    count: count as usize,
                    payload: Payload::Bytes(bytes::Bytes::from(payload)),
                    seq,
                    needs_ack,
                };
                self.mailbox.deliver_displaced(env, overtake as usize);
            }
            Frame::Finish { rank } => {
                let rank = rank as usize;
                if rank < self.np {
                    self.finished[rank].store(true, Ordering::SeqCst);
                    let _lock = self.agreements.lock();
                    self.agree_cv.notify_all();
                }
            }
            Frame::Failed { rank } => {
                let rank = rank as usize;
                if rank < self.np {
                    self.note_failed(rank);
                }
            }
            Frame::Agree {
                comm_id,
                kind,
                seq,
                rank,
                value,
            } => {
                let mut slots = self.agreements.lock();
                slots
                    .entry((comm_id, kind, seq))
                    .or_default()
                    .insert(rank as usize, value);
                self.agree_cv.notify_all();
            }
            // Heartbeats refresh `last_heard` above; a stray handshake or
            // metrics frame after setup carries nothing actionable (metrics
            // frames are interpreted by pmrun's collector, not by peers).
            Frame::Ping
            | Frame::Hello { .. }
            | Frame::Register { .. }
            | Frame::Table { .. }
            | Frame::Metrics { .. } => {}
        }
    }

    /// One peer connection's read loop: frames until EOF. EOF (or a read
    /// error) from a peer that never said Finish is a death verdict.
    fn reader_loop(&self, peer: usize, mut stream: TcpStream) {
        loop {
            match read_frame(&mut stream) {
                Ok(Some(frame)) => self.handle_frame(peer, frame),
                Ok(None) | Err(_) => {
                    if !self.finished[peer].load(Ordering::SeqCst) {
                        self.note_failed(peer);
                    }
                    return;
                }
            }
        }
    }

    /// Ping every peer on a cadence; fail peers silent past the timeout.
    fn heartbeat_loop(&self) {
        let ping = encode_frame(&Frame::Ping);
        loop {
            std::thread::sleep(HEARTBEAT_EVERY);
            if self.closing.load(Ordering::SeqCst) {
                return;
            }
            let now = self.elapsed_ms();
            let mut dead = Vec::new();
            for peer in 0..self.np {
                if peer == self.me
                    || self.peers[peer].is_none()
                    || self.finished[peer].load(Ordering::SeqCst)
                    || self.failed[peer].load(Ordering::SeqCst)
                {
                    continue;
                }
                if !self.write_to(peer, &ping) {
                    dead.push(peer);
                    continue;
                }
                if let Some(hub) = &self.metrics {
                    hub.incr(self.me, CounterId::NetHeartbeats);
                    let now_ns = (self.start.elapsed().as_nanos() as u64).max(1);
                    // Only arm a new RTT sample if none is outstanding, so
                    // a slow round isn't shortened by a later ping.
                    let _ = self.pending_ping_ns[peer].compare_exchange(
                        0,
                        now_ns,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                }
                let heard = self.last_heard[peer].load(Ordering::Relaxed);
                if now.saturating_sub(heard) > PEER_TIMEOUT.as_millis() as u64 {
                    dead.push(peer);
                }
            }
            for peer in dead {
                if !self.closing.load(Ordering::SeqCst) {
                    self.note_failed(peer);
                }
            }
        }
    }
}

/// One process's handle on a TCP-meshed world: implements [`Fabric`] for
/// the single rank this process hosts.
pub struct TcpFabric {
    inner: Arc<Inner>,
}

impl TcpFabric {
    /// Join world `spec` as rank `me`: bind a listener, rendezvous through
    /// `server`, and establish the peer mesh. Blocks until every
    /// participating rank is connected.
    pub fn establish(server: &str, me: usize, spec: &WorldSpec) -> Result<TcpFabric> {
        let np = spec.np;
        let sock_err = |what: &str| {
            let what = what.to_string();
            move |e: std::io::Error| Error::Codec(format!("{what}: {e}"))
        };
        let listener = TcpListener::bind("127.0.0.1:0").map_err(sock_err("bind listener"))?;
        let my_addr = listener
            .local_addr()
            .map_err(sock_err("listener address"))?
            .to_string();
        let table = rendezvous::register(server, spec.epoch, me, np, &my_addr)?;

        // One connection per peer: dial every lower rank, accept every
        // higher one. Dials can't race the listeners — every rank bound
        // its listener before registering, and the table only exists once
        // everyone registered.
        let mut streams: Vec<Option<TcpStream>> = (0..np).map(|_| None).collect();
        for (peer, addr) in table.iter().enumerate().take(me) {
            let mut stream = TcpStream::connect(addr)
                .map_err(sock_err(&format!("dial rank {peer} at {addr}")))?;
            crate::frame::write_frame(
                &mut stream,
                &Frame::Hello {
                    epoch: spec.epoch,
                    rank: me as u64,
                },
            )
            .map_err(sock_err(&format!("handshake with rank {peer}")))?;
            streams[peer] = Some(stream);
        }
        for _ in me + 1..np {
            let (mut stream, _) = listener.accept().map_err(sock_err("accept peer"))?;
            match read_frame(&mut stream)? {
                Some(Frame::Hello { epoch, rank }) if epoch == spec.epoch => {
                    let rank = rank as usize;
                    if rank <= me || rank >= np || streams[rank].is_some() {
                        return Err(Error::Codec(format!("bad handshake from rank {rank}")));
                    }
                    streams[rank] = Some(stream);
                }
                other => {
                    return Err(Error::Codec(format!(
                        "expected Hello for epoch {}, got {other:?}",
                        spec.epoch
                    )));
                }
            }
        }
        for stream in streams.iter().flatten() {
            let _ = stream.set_nodelay(true);
        }

        let read_halves: Vec<Option<TcpStream>> = streams
            .iter()
            .map(|s| {
                s.as_ref()
                    .map(|s| s.try_clone().expect("clone established stream"))
            })
            .collect();
        let inner = Arc::new(Inner {
            me,
            np,
            names: (0..np)
                .map(|r| format!("node-{:02}", r / spec.ranks_per_node + 1))
                .collect(),
            poll_interval: spec.poll_interval,
            tracer: spec.tracer.clone(),
            metrics: spec.metrics.clone(),
            fault: spec.fault.clone().map(|plan| FaultState::new(plan, np)),
            mailbox: match &spec.metrics {
                Some(hub) => Mailbox::with_metrics(hub.clone(), me),
                None => Mailbox::new(),
            },
            send_seq: AtomicU64::new(0),
            finished: (0..np).map(|_| AtomicBool::new(false)).collect(),
            failed: (0..np).map(|_| AtomicBool::new(false)).collect(),
            peers: streams
                .into_iter()
                .enumerate()
                .map(|(peer, s)| {
                    s.map(|s| PeerWriter::new(s, spec.metrics.clone().map(|hub| (hub, me, peer))))
                })
                .collect(),
            last_heard: (0..np).map(|_| AtomicU64::new(0)).collect(),
            pending_ping_ns: (0..np).map(|_| AtomicU64::new(0)).collect(),
            start: Instant::now(),
            agreements: Mutex::new(HashMap::new()),
            agree_cv: Condvar::new(),
            closing: AtomicBool::new(false),
        });
        for (peer, stream) in read_halves.into_iter().enumerate() {
            let Some(stream) = stream else { continue };
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("net-reader-{peer}"))
                .spawn(move || inner.reader_loop(peer, stream))
                .map_err(sock_err("spawn reader"))?;
        }
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("net-heartbeat".into())
                .spawn(move || inner.heartbeat_loop())
                .map_err(sock_err("spawn heartbeat"))?;
        }
        Ok(TcpFabric { inner })
    }

    /// Abruptly close every peer connection without announcing Finish —
    /// what a killed process looks like from the outside. Test/diagnostic
    /// aid for exercising the failure-detection path in-process.
    pub fn sever(&self) {
        self.inner.closing.store(true, Ordering::SeqCst);
        for writer in self.inner.peers.iter().flatten() {
            writer.shutdown(Shutdown::Both);
        }
    }
}

impl Fabric for TcpFabric {
    fn np(&self) -> usize {
        self.inner.np
    }

    fn rank_name(&self, world_rank: usize) -> &str {
        &self.inner.names[world_rank]
    }

    fn poll_interval(&self) -> Duration {
        self.inner.poll_interval
    }

    fn tracer(&self) -> Option<&Tracer> {
        self.inner.tracer.as_ref()
    }

    fn metrics(&self) -> Option<&MetricsHub> {
        self.inner.metrics.as_ref()
    }

    fn record_msg(&self, _event: MsgEvent) {
        // The legacy message log backs `run_traced`, which is pinned to
        // the thread backend; structured tracing covers the network path.
    }

    fn next_send_seq(&self, _me: usize) -> u64 {
        self.inner.send_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn fault_op(&self, me: usize, op: &'static str) -> Result<()> {
        if let Some(fault) = &self.inner.fault {
            if let Err(e) = fault.record_op(me, op) {
                self.mark_failed(me);
                return Err(e);
            }
        }
        Ok(())
    }

    fn chaos_decision(&self, me: usize) -> Option<ChaosDecision> {
        self.inner.fault.as_ref().map(|fault| fault.decide(me))
    }

    fn shares_address_space(&self, me: usize, dest: usize) -> bool {
        // Every peer is a separate process; only a rank's sends to itself
        // stay in this address space (delivered into the local mailbox).
        me == dest
    }

    fn rank_alive(&self, world_rank: usize) -> bool {
        !self.inner.finished[world_rank].load(Ordering::SeqCst)
            && !self.inner.failed[world_rank].load(Ordering::SeqCst)
    }

    fn rank_failed(&self, world_rank: usize) -> bool {
        self.inner.failed[world_rank].load(Ordering::SeqCst)
    }

    fn mark_failed(&self, world_rank: usize) {
        let first_verdict = !self.inner.failed[world_rank].swap(true, Ordering::SeqCst);
        {
            let _lock = self.inner.agreements.lock();
            self.inner.agree_cv.notify_all();
        }
        // Own failures (fault-plan kill, panic) are announced so every
        // peer converges without waiting for a timeout. Verdicts *about*
        // peers stay local — each process discovers a dead peer through
        // its own connection.
        if world_rank == self.inner.me && first_verdict {
            self.inner.broadcast(&Frame::Failed {
                rank: world_rank as u64,
            });
        }
    }

    fn finish(&self, me: usize) {
        self.inner.finished[me].store(true, Ordering::SeqCst);
        {
            let _lock = self.inner.agreements.lock();
            self.inner.agree_cv.notify_all();
        }
        self.inner.closing.store(true, Ordering::SeqCst);
        self.inner.broadcast(&Frame::Finish { rank: me as u64 });
        // Half-close every connection: peers read our Finish, then a
        // clean EOF, and their reader threads wind down; ours exit when
        // the peers do the same. No sockets or threads outlive the world.
        for writer in self.inner.peers.iter().flatten() {
            writer.shutdown(Shutdown::Write);
        }
    }

    fn deliver(
        &self,
        _me: usize,
        dest: usize,
        env: Envelope,
        overtake: usize,
        duplicate: bool,
    ) -> bool {
        if dest == self.inner.me {
            let mailbox = &self.inner.mailbox;
            if duplicate {
                mailbox.deliver_displaced(env.clone(), overtake);
                return !mailbox.deliver_displaced(env, 0);
            }
            mailbox.deliver_displaced(env, overtake);
            return false;
        }
        let record = encode_frame(&Frame::Env {
            comm_id: env.comm_id,
            src: env.src as u64,
            tag: env.tag,
            type_name: env.type_name.to_string(),
            count: env.count as u64,
            seq: env.seq,
            needs_ack: env.needs_ack,
            overtake: overtake as u32,
            payload: env.payload.to_wire().to_vec(),
        });
        let mut ok = self.inner.write_to(dest, &record);
        if ok && duplicate {
            // Transmit a second copy; the receiving mailbox dedups it, so
            // the swallow isn't observable on this side.
            ok = self.inner.write_to(dest, &record);
        }
        if !ok && !self.inner.finished[dest].load(Ordering::SeqCst) {
            self.inner.note_failed(dest);
        }
        false
    }

    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        assert_eq!(
            world_rank, self.inner.me,
            "a TCP fabric only hosts its own rank's mailbox"
        );
        &self.inner.mailbox
    }

    fn publish_wait(&self, _me: usize, _record: WaitRecord) {
        // No global view: wait records have no cross-process audience.
    }

    fn clear_wait(&self, _me: usize) {}

    fn deadlocked(&self, _me: usize) -> Option<String> {
        // A process can't prove a cross-process waits-for cycle; never
        // report a false positive. Finished-sender deadlocks still
        // resolve via `rank_alive` (Finish frames).
        None
    }

    fn agreement(&self, key: AgreeKey, me: usize, value: u64, group: &[usize]) -> AgreeSlot {
        {
            let mut slots = self.inner.agreements.lock();
            slots.entry(key).or_default().insert(me, value);
        }
        self.inner.broadcast(&Frame::Agree {
            comm_id: key.0,
            kind: key.1,
            seq: key.2,
            rank: me as u64,
            value,
        });
        let mut slots = self.inner.agreements.lock();
        loop {
            let slot = slots.entry(key).or_default();
            let done = group.iter().all(|&w| {
                slot.contains_key(&w)
                    || self.inner.failed[w].load(Ordering::SeqCst)
                    || self.inner.finished[w].load(Ordering::SeqCst)
            });
            if done {
                return slot.clone();
            }
            self.inner
                .agree_cv
                .wait_for(&mut slots, self.inner.poll_interval);
        }
    }

    fn prune_comm(&self, _me: usize, comm_id: u64) {
        self.inner.mailbox.prune_comm(comm_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patternlets_mp::status::{SourceSel, TagSel};

    fn spec(np: usize, epoch: u64) -> WorldSpec {
        WorldSpec {
            np,
            ranks_per_node: 1,
            fault: None,
            poll_interval: Duration::from_millis(5),
            tracer: None,
            metrics: None,
            epoch,
        }
    }

    /// Establish a full mesh of `np` fabrics inside one test process —
    /// each plays a different world rank, exactly as `np` processes would.
    fn mesh(np: usize, epoch: u64) -> Vec<TcpFabric> {
        let server = rendezvous::serve().unwrap().to_string();
        let handles: Vec<_> = (0..np)
            .map(|me| {
                let server = server.clone();
                std::thread::spawn(move || {
                    TcpFabric::establish(&server, me, &spec(np, epoch)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn env(comm_id: u64, src: usize, tag: i32, seq: u64) -> Envelope {
        Envelope {
            comm_id,
            src,
            tag,
            type_name: "i64",
            count: 1,
            payload: Payload::Bytes(bytes::Bytes::from(vec![7, 0, 0, 0, 0, 0, 0, 0])),
            seq,
            needs_ack: false,
        }
    }

    #[test]
    fn envelope_crosses_the_socket_and_matches() {
        let fabrics = mesh(2, 0);
        fabrics[0].deliver(0, 1, env(0, 0, 5, 0), 0, false);
        let got = fabrics[1]
            .mailbox(1)
            .recv_match(
                0,
                SourceSel::Rank(0),
                TagSel::Tag(5),
                Duration::from_millis(5),
                || None,
                || {},
            )
            .unwrap();
        assert_eq!(got.tag, 5);
        assert_eq!(got.type_name, "i64");
        assert_eq!(got.payload.len(), 8);
        for f in &fabrics {
            f.finish(f.inner.me);
        }
    }

    #[test]
    fn duplicate_transmissions_dedup_on_the_receiver() {
        let fabrics = mesh(2, 1);
        fabrics[0].deliver(0, 1, env(0, 0, 9, 0), 0, true);
        fabrics[0].deliver(0, 1, env(0, 0, 9, 1), 0, false);
        // Both messages arrive exactly once, in order.
        for want_seq in [0, 1] {
            let got = fabrics[1]
                .mailbox(1)
                .recv_match(
                    0,
                    SourceSel::Rank(0),
                    TagSel::Tag(9),
                    Duration::from_millis(5),
                    || None,
                    || {},
                )
                .unwrap();
            assert_eq!(got.seq, want_seq);
        }
        assert!(fabrics[1].mailbox(1).is_empty(), "duplicate was swallowed");
        for f in &fabrics {
            f.finish(f.inner.me);
        }
    }

    #[test]
    fn finish_reads_as_clean_exit_not_failure() {
        let fabrics = mesh(2, 2);
        fabrics[0].finish(0);
        // Rank 1 sees rank 0 finished (not failed) within a poll or two.
        let deadline = Instant::now() + Duration::from_secs(5);
        while fabrics[1].rank_alive(0) {
            assert!(Instant::now() < deadline, "Finish frame never arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!fabrics[1].rank_failed(0), "clean exit must not be failure");
        fabrics[1].finish(1);
    }

    #[test]
    fn abrupt_disconnect_marks_the_peer_failed() {
        let fabrics = mesh(3, 3);
        fabrics[0].sever();
        let deadline = Instant::now() + Duration::from_secs(5);
        for survivor in [1, 2] {
            while !fabrics[survivor].rank_failed(0) {
                assert!(Instant::now() < deadline, "EOF verdict never arrived");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        assert!(!fabrics[1].rank_failed(2), "survivors stay unfailed");
        for f in &fabrics[1..] {
            f.finish(f.inner.me);
        }
    }

    #[test]
    fn agreement_completes_across_the_mesh() {
        let fabrics = mesh(3, 4);
        let group = [0, 1, 2];
        let handles: Vec<_> = fabrics
            .iter()
            .enumerate()
            .map(|(me, f)| {
                std::thread::spawn({
                    let inner = Arc::clone(&f.inner);
                    move || {
                        let f = TcpFabric { inner };
                        f.agreement((0, 0, 0), me, me as u64 + 10, &group)
                    }
                })
            })
            .collect();
        for (me, h) in handles.into_iter().enumerate() {
            let slot = h.join().unwrap();
            assert_eq!(slot.len(), 3, "rank {me} saw all contributions");
            assert_eq!(slot[&2], 12);
        }
        for f in &fabrics {
            f.finish(f.inner.me);
        }
    }

    #[test]
    fn agreement_excludes_a_dead_member() {
        let fabrics = mesh(2, 5);
        fabrics[1].sever(); // rank 1 "dies" without contributing
        let slot = fabrics[0].agreement((0, 1, 0), 0, 42, &[0, 1]);
        assert_eq!(slot.len(), 1, "only the survivor contributed");
        assert_eq!(slot[&0], 42);
        fabrics[0].finish(0);
    }

    #[test]
    fn type_name_interning_reuses_known_statics() {
        assert_eq!(intern_type_name("i64"), "i64");
        let a = intern_type_name("custom::Type");
        let b = intern_type_name("custom::Type");
        assert!(std::ptr::eq(a, b), "unknown names leak exactly once");
    }
}
