//! Wire-level fault injection — the socket-layer sibling of
//! [`FaultPlan`](patternlets_mp::fault::FaultPlan).
//!
//! A [`NetChaosPlan`] is a seed plus a handful of probabilities. Each TCP
//! connection derives its own deterministic RNG stream from the seed and
//! the `(lower rank, higher rank)` pair, so a given seed produces the same
//! cuts, truncations and bit flips on every run regardless of thread
//! scheduling — the property that makes a chaos soak debuggable.
//!
//! Injection happens in exactly one place, the peer writer's batch flush,
//! and each decision applies to one batch:
//!
//! * **Cut** severs the connection *before* the batch is written. The
//!   sequenced frames in the dropped batch stay in the send ring and are
//!   replayed after reconnect — every cut therefore exercises the resume
//!   path for real.
//! * **Truncate** writes a strict prefix of the batch, then severs. The
//!   receiver sees a frame cut mid-header or mid-body and treats it as a
//!   disconnect.
//! * **Corrupt** flips one bit in a *copy* of the batch and writes the
//!   whole thing. The frame CRC catches it; the receiver drops the
//!   connection, counting a CRC reject, and the resume replays cleanly
//!   from the ring (which still holds the unflipped original).
//!
//! `cut_after` guarantees progress: after each cut the connection is left
//! alone for at least that many frames before the plan may strike again,
//! so a chaotic run still terminates.

use patternlets_core::rng::{Rng, Xoshiro256StarStar};

/// What to do with one outgoing batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Write the batch unharmed.
    Pass,
    /// Sever the connection without writing any of the batch.
    Cut,
    /// Write only the first `bytes` bytes of the batch, then sever.
    Truncate {
        /// Number of leading bytes to let through.
        bytes: usize,
    },
    /// Flip bit `bit` of byte `byte` in a copy of the batch, then write
    /// all of it.
    Corrupt {
        /// Index of the byte to damage.
        byte: usize,
        /// Bit position within that byte (0..8).
        bit: u32,
    },
}

/// One chaos decision: an artificial delay followed by an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosDecision {
    /// Milliseconds to sleep before acting (models a congested link).
    pub delay_ms: u64,
    /// What happens to the batch.
    pub action: ChaosAction,
}

/// Seeded plan for wire-level mayhem, shared by every connection of a
/// fabric. Mirrors the shape of the in-process `FaultPlan`: one seed in,
/// deterministic per-entity streams out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetChaosPlan {
    /// Master seed; combined with the connection's rank pair.
    pub seed: u64,
    /// Minimum frames a connection is left alone after each cut (and at
    /// stream start) before faults may fire. Guarantees progress.
    pub cut_after: u64,
    /// Probability per eligible batch of a clean cut.
    pub cut_prob: f64,
    /// Probability per eligible batch of a truncated write (then cut).
    pub truncate_prob: f64,
    /// Probability per eligible batch of a single flipped bit.
    pub corrupt_prob: f64,
    /// Upper bound (exclusive, ms) on per-batch artificial delay; 0
    /// disables delays.
    pub delay_up_to_ms: u64,
}

impl NetChaosPlan {
    /// The default mix for a given seed: frequent-enough faults to force
    /// multiple reconnects in a short run, spaced by `cut_after` so the
    /// run still completes.
    pub fn seeded(seed: u64) -> Self {
        NetChaosPlan {
            seed,
            cut_after: 10,
            cut_prob: 0.08,
            truncate_prob: 0.04,
            corrupt_prob: 0.04,
            delay_up_to_ms: 3,
        }
    }

    /// Parse the `PMRUN_NET_CHAOS` value: a bare integer seed.
    pub fn from_env_value(value: &str) -> Option<Self> {
        value.trim().parse::<u64>().ok().map(Self::seeded)
    }

    /// The per-connection stream for the link between `a` and `b`
    /// (direction-independent: both ends of a pair share a pair key, but
    /// only the writer side consults it).
    pub fn connection(&self, a: u64, b: u64) -> NetChaosConn {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let pair = lo
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(hi)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        NetChaosConn {
            plan: *self,
            rng: Xoshiro256StarStar::seeded(self.seed ^ pair),
            frames_since_cut: 0,
        }
    }
}

/// Per-connection chaos state: an independent RNG stream plus the
/// grace-period counter.
#[derive(Debug, Clone)]
pub struct NetChaosConn {
    plan: NetChaosPlan,
    rng: Xoshiro256StarStar,
    frames_since_cut: u64,
}

impl NetChaosConn {
    /// Decide the fate of one outgoing batch of `frame_count` frames
    /// totalling `batch_bytes` bytes. Advances the RNG stream and the
    /// grace counter; cuts (including truncations) reset the counter so
    /// each connection incarnation gets its grace period.
    pub fn decide(&mut self, batch_bytes: usize, frame_count: usize) -> ChaosDecision {
        let delay_ms = if self.plan.delay_up_to_ms > 0 {
            self.rng.gen_range(self.plan.delay_up_to_ms)
        } else {
            0
        };
        // Grace period: let the young connection deliver some frames.
        if self.frames_since_cut < self.plan.cut_after {
            self.frames_since_cut += frame_count as u64;
            return ChaosDecision {
                delay_ms,
                action: ChaosAction::Pass,
            };
        }
        let roll = self.rng.gen_f64();
        let action = if roll < self.plan.cut_prob {
            self.frames_since_cut = 0;
            ChaosAction::Cut
        } else if roll < self.plan.cut_prob + self.plan.truncate_prob && batch_bytes > 1 {
            self.frames_since_cut = 0;
            ChaosAction::Truncate {
                bytes: 1 + self.rng.gen_range(batch_bytes as u64 - 1) as usize,
            }
        } else if roll < self.plan.cut_prob + self.plan.truncate_prob + self.plan.corrupt_prob
            && batch_bytes > 0
        {
            // Not a cut: the whole (damaged) batch goes out, so the frames
            // count toward the grace window of the *next* incarnation only
            // once the receiver drops the connection. Reset anyway: the
            // receiver will cut on the CRC reject.
            self.frames_since_cut = 0;
            ChaosAction::Corrupt {
                byte: self.rng.gen_range(batch_bytes as u64) as usize,
                bit: self.rng.gen_range(8) as u32,
            }
        } else {
            self.frames_since_cut += frame_count as u64;
            ChaosAction::Pass
        };
        ChaosDecision { delay_ms, action }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(conn: &mut NetChaosConn, batches: usize) -> Vec<ChaosDecision> {
        (0..batches).map(|_| conn.decide(256, 2)).collect()
    }

    #[test]
    fn same_seed_same_pair_same_stream() {
        let plan = NetChaosPlan::seeded(42);
        let a = run(&mut plan.connection(0, 3), 200);
        let b = run(&mut plan.connection(0, 3), 200);
        assert_eq!(a, b);
        // Pair key is direction-independent.
        let c = run(&mut plan.connection(3, 0), 200);
        assert_eq!(a, c);
    }

    #[test]
    fn different_pairs_diverge() {
        let plan = NetChaosPlan::seeded(42);
        let a = run(&mut plan.connection(0, 1), 200);
        let b = run(&mut plan.connection(0, 2), 200);
        assert_ne!(a, b);
    }

    #[test]
    fn grace_period_spaces_out_the_faults() {
        let mut plan = NetChaosPlan::seeded(7);
        plan.cut_prob = 1.0; // fault on every eligible batch
        plan.truncate_prob = 0.0;
        plan.corrupt_prob = 0.0;
        let mut conn = plan.connection(0, 1);
        let mut frames_between = 0u64;
        for _ in 0..100 {
            let d = conn.decide(64, 2);
            match d.action {
                ChaosAction::Pass => frames_between += 2,
                ChaosAction::Cut => {
                    assert!(
                        frames_between >= plan.cut_after,
                        "cut arrived after only {frames_between} frames"
                    );
                    frames_between = 0;
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_keeps_a_strict_prefix() {
        let mut plan = NetChaosPlan::seeded(11);
        plan.cut_prob = 0.0;
        plan.truncate_prob = 1.0;
        plan.corrupt_prob = 0.0;
        plan.cut_after = 0;
        let mut conn = plan.connection(2, 5);
        for _ in 0..50 {
            match conn.decide(100, 1).action {
                ChaosAction::Truncate { bytes } => {
                    assert!((1..100).contains(&bytes));
                }
                other => panic!("expected truncate, got {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_targets_a_real_byte() {
        let mut plan = NetChaosPlan::seeded(13);
        plan.cut_prob = 0.0;
        plan.truncate_prob = 0.0;
        plan.corrupt_prob = 1.0;
        plan.cut_after = 0;
        let mut conn = plan.connection(1, 4);
        for _ in 0..50 {
            match conn.decide(32, 1).action {
                ChaosAction::Corrupt { byte, bit } => {
                    assert!(byte < 32);
                    assert!(bit < 8);
                }
                other => panic!("expected corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn env_value_parses_a_bare_seed() {
        assert_eq!(
            NetChaosPlan::from_env_value(" 99 "),
            Some(NetChaosPlan::seeded(99))
        );
        assert_eq!(NetChaosPlan::from_env_value("nope"), None);
    }

    #[test]
    fn delays_respect_the_bound() {
        let plan = NetChaosPlan::seeded(3);
        let mut conn = plan.connection(0, 1);
        for _ in 0..200 {
            let d = conn.decide(64, 1);
            assert!(d.delay_ms < plan.delay_up_to_ms);
        }
    }
}
