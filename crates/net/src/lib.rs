//! patternlets-net: the wire transport that turns the in-process `mp`
//! runtime into a real multi-process one.
//!
//! The `mp` crate's [`Fabric`](patternlets_mp::Fabric) trait is the seam:
//! everything a communicator needs from its transport — envelope
//! delivery, liveness, failure marking, agreement. This crate provides
//! the TCP implementation ([`fabric::TcpFabric`]): each rank is a
//! separate OS process, peers form a full loopback socket mesh found
//! through a tiny [`rendezvous`] server, and envelopes travel as
//! length-prefixed [`frame::Frame`]s.
//!
//! Nothing in a patternlet changes. The `pmrun` launcher spawns N
//! worker processes with `PMRUN_RANK`/`PMRUN_NP`/`PMRUN_RENDEZVOUS` set;
//! each worker calls [`install_from_env`] once at startup, and every
//! world the program builds after that runs over TCP instead of threads.
//!
//! ```text
//! pmrun -np 4 patternlets mpi/broadcast
//!   ├── worker rank 0 ── PMRUN_RANK=0 ─┐
//!   ├── worker rank 1 ── PMRUN_RANK=1 ─┤   rendezvous per world epoch,
//!   ├── worker rank 2 ── PMRUN_RANK=2 ─┤── then a full TCP mesh; each
//!   └── worker rank 3 ── PMRUN_RANK=3 ─┘   process runs one rank's body
//! ```

pub mod chaos;
pub mod fabric;
pub mod frame;
pub mod rendezvous;
pub mod ring;
pub mod shm;

use std::sync::Arc;

use patternlets_core::{Error, Result};
use patternlets_mp::{ProvidedWorld, WorldSpec};

pub use fabric::TcpFabric;

/// Environment variable carrying this worker's world rank.
pub const ENV_RANK: &str = "PMRUN_RANK";
/// Environment variable carrying the job's process count.
pub const ENV_NP: &str = "PMRUN_NP";
/// Environment variable carrying the rendezvous server address.
pub const ENV_RENDEZVOUS: &str = "PMRUN_RENDEZVOUS";
/// Environment variable carrying the directory for per-rank trace files.
pub const ENV_TRACE_DIR: &str = "PMRUN_TRACE_DIR";
/// Environment variable carrying the address of `pmrun`'s metrics
/// collector. When set, workers enable a [`patternlets_metrics::MetricsHub`]
/// and push snapshots there as [`frame::Frame::Metrics`] frames.
pub const ENV_METRICS_ADDR: &str = "PMRUN_METRICS_ADDR";
/// Environment variable carrying the wire-chaos seed. When set, every
/// worker's outgoing batches pass through a seeded
/// [`chaos::NetChaosPlan`] that cuts, truncates and corrupts them.
pub const ENV_NET_CHAOS: &str = "PMRUN_NET_CHAOS";
/// Environment variable carrying the global epoch offset `pmrun` assigns
/// to respawned workers, so a respawned process's first world lines up
/// with the retry world the survivors build after the failure.
pub const ENV_EPOCH_BASE: &str = "PMRUN_EPOCH_BASE";
/// Environment variable carrying the checkpoint directory for
/// `pmrun --respawn` jobs; read by the harness's
/// `RunConfig::checkpoint_store`.
pub const ENV_CKPT_DIR: &str = "PMRUN_CKPT_DIR";

/// Fabric selection: `auto` (default — shared memory when co-located,
/// TCP otherwise), `tcp`, or `shm` (`pmrun --fabric`).
pub const ENV_FABRIC: &str = "PMRUN_FABRIC";

/// Directory for this job's shared-memory ring segments (`pmrun` points
/// every rank at a per-job scratch directory it sweeps at exit).
pub const ENV_SHM_DIR: &str = "PMRUN_SHM_DIR";

/// This process's most recent estimated wall-clock offset to rank 0
/// (rank 0's clock minus ours, in nanoseconds). Written by
/// [`TcpFabric`] establishment when a traced world's peer mesh comes up;
/// 0 for rank 0 itself, for co-located (shared-memory/thread) worlds —
/// one host shares one clock — and for untraced worlds. Trace exporters
/// add it to the tracer's wall-clock origin to produce each rank's
/// `traceBaseNs` anchor.
static CLOCK_OFFSET_NS: std::sync::atomic::AtomicI64 = std::sync::atomic::AtomicI64::new(0);

/// The current clock-offset estimate to rank 0, in nanoseconds (see
/// [`CLOCK_OFFSET_NS`]). Latest world establishment wins.
pub fn clock_offset_ns() -> i64 {
    CLOCK_OFFSET_NS.load(std::sync::atomic::Ordering::Relaxed)
}

pub(crate) fn set_clock_offset_ns(offset: i64) {
    CLOCK_OFFSET_NS.store(offset, std::sync::atomic::Ordering::Relaxed);
}

/// Push one metrics snapshot to the collector at `addr`.
///
/// Each push is a short-lived connection carrying a single
/// [`frame::Frame::Metrics`]; snapshots are cumulative, so the collector
/// keeps only the latest per rank and a lost push is healed by the next
/// one. Returns whether the push reached the collector.
pub fn push_metrics(addr: &str, rank: usize, hub: &patternlets_metrics::MetricsHub) -> bool {
    let payload = patternlets_metrics::wire::encode(&hub.snapshot());
    let frame = frame::Frame::Metrics {
        rank: rank as u64,
        payload,
    };
    match std::net::TcpStream::connect(addr) {
        Ok(mut stream) => frame::write_frame(&mut stream, &frame).is_ok(),
        Err(_) => false,
    }
}

/// The launch parameters a `pmrun` worker finds in its environment.
#[derive(Debug, Clone)]
pub struct NetEnv {
    /// This process's world rank.
    pub rank: usize,
    /// Total worker processes in the job.
    pub np: usize,
    /// Rendezvous server address (`host:port`).
    pub rendezvous: String,
    /// Offset added to every world's epoch — nonzero only in respawned
    /// workers, where `pmrun` sets it to the survivors' current retry
    /// round so both sides rendezvous at the same epoch.
    pub epoch_base: u64,
    /// Wire-chaos plan, if `pmrun --net-chaos SEED` armed one.
    pub chaos: Option<chaos::NetChaosPlan>,
    /// Which transport to establish (`PMRUN_FABRIC`, default `auto`).
    pub fabric: shm::FabricMode,
    /// Where this job's ring segments live (`PMRUN_SHM_DIR`); derived
    /// from the rendezvous address when `pmrun` didn't pass one.
    pub shm_dir: std::path::PathBuf,
}

/// Read the `pmrun` worker environment, if this process was launched by
/// `pmrun`. Returns `None` when unlaunched (plain `patternlets` runs);
/// a half-set environment is an error, not a silent fallback.
pub fn net_env() -> Result<Option<NetEnv>> {
    let vars: Vec<Option<String>> = [ENV_RANK, ENV_NP, ENV_RENDEZVOUS]
        .iter()
        .map(|k| std::env::var(k).ok())
        .collect();
    match (&vars[0], &vars[1], &vars[2]) {
        (None, None, None) => Ok(None),
        (Some(rank), Some(np), Some(rendezvous)) => {
            let parse = |name: &str, v: &str| {
                v.parse::<usize>()
                    .map_err(|_| Error::InvalidConfig(format!("{name}={v} is not a number")))
            };
            let rank = parse(ENV_RANK, rank)?;
            let np = parse(ENV_NP, np)?;
            if rank >= np {
                return Err(Error::InvalidConfig(format!(
                    "{ENV_RANK}={rank} out of range for {ENV_NP}={np}"
                )));
            }
            let epoch_base = match std::env::var(ENV_EPOCH_BASE).ok() {
                None => 0,
                Some(v) => v.parse::<u64>().map_err(|_| {
                    Error::InvalidConfig(format!("{ENV_EPOCH_BASE}={v} is not a number"))
                })?,
            };
            let chaos = std::env::var(ENV_NET_CHAOS)
                .ok()
                .and_then(|v| chaos::NetChaosPlan::from_env_value(&v));
            let fabric = match std::env::var(ENV_FABRIC).ok() {
                None => shm::FabricMode::default(),
                Some(v) => shm::FabricMode::parse(&v).ok_or_else(|| {
                    Error::InvalidConfig(format!("{ENV_FABRIC}={v} is not one of auto, tcp, shm"))
                })?,
            };
            let shm_dir = match std::env::var(ENV_SHM_DIR).ok() {
                Some(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
                // Unlaunched-by-pmrun shm runs (tests, hand-started
                // workers) still need one shared, job-unique location;
                // the rendezvous address is the one identity every rank
                // of a job shares and no other job does.
                _ => {
                    let sanitized: String = rendezvous
                        .chars()
                        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
                        .collect();
                    std::env::temp_dir().join(format!("pmrun-shm-{sanitized}"))
                }
            };
            Ok(Some(NetEnv {
                rank,
                np,
                rendezvous: rendezvous.clone(),
                epoch_base,
                chaos,
                fabric,
                shm_dir,
            }))
        }
        _ => Err(Error::InvalidConfig(format!(
            "partial pmrun environment: {ENV_RANK}/{ENV_NP}/{ENV_RENDEZVOUS} must be set together"
        ))),
    }
}

/// Install the TCP fabric provider from the `pmrun` environment, if
/// present. Call once at process start (the `patternlets` binary does);
/// every world built afterwards runs over TCP. Returns the environment
/// when installed, `None` when this isn't a `pmrun` worker.
///
/// Per world, the provider decides by world size:
/// - `world np == job np`: this process plays its rank over TCP;
/// - `world np < job np`: ranks inside the world play it, the rest
///   [skip](ProvidedWorld::Skip) it (empty result, no rendezvous wait
///   beyond registration — skippers don't register at all);
/// - `world np > job np`: refused — there aren't enough processes, and
///   a thread fallback would print every rank's output once per process.
pub fn install_from_env() -> Result<Option<NetEnv>> {
    let Some(env) = net_env()? else {
        return Ok(None);
    };
    let provider_env = env.clone();
    patternlets_mp::install_fabric_provider(Box::new(move |spec: &WorldSpec| {
        provide(&provider_env, spec)
    }));
    Ok(Some(env))
}

/// One job's transport parameters in a `pmserve` worker — the elastic
/// analogue of [`NetEnv`], scoped to a single scheduled job instead of a
/// whole process lifetime.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// The rank this worker plays in the job's world.
    pub rank: usize,
    /// The job's world size.
    pub np: usize,
    /// Rendezvous address (the daemon's cluster listener).
    pub rendezvous: String,
    /// First epoch of the job's private rendezvous block: every world the
    /// patternlet builds registers at `epoch_base + world_ordinal`, so
    /// concurrent jobs sharing one [`rendezvous::RendezvousCore`] can
    /// never collide.
    pub epoch_base: u64,
    /// Wire-chaos plan for this job, if the daemon armed one.
    pub chaos: Option<chaos::NetChaosPlan>,
    /// The process-global world-epoch value of the first world built under
    /// this context, captured lazily. The mp runtime numbers worlds with
    /// one monotone per-process counter; two workers that have run
    /// different numbers of jobs sit at different counts, so the absolute
    /// epoch is meaningless across processes. Subtracting the first value
    /// seen turns it into a per-job ordinal (0, 1, 2, …), identical on
    /// every worker because all ranks build the same world sequence.
    epoch_zero: Arc<std::sync::OnceLock<u64>>,
}

impl JobCtx {
    /// Transport context for one assigned job.
    pub fn new(
        rank: usize,
        np: usize,
        rendezvous: String,
        epoch_base: u64,
        chaos: Option<chaos::NetChaosPlan>,
    ) -> Self {
        JobCtx {
            rank,
            np,
            rendezvous,
            epoch_base,
            chaos,
            epoch_zero: Arc::new(std::sync::OnceLock::new()),
        }
    }
}

std::thread_local! {
    /// The job currently running on THIS thread, consulted by the
    /// provider installed by [`install_job_fabric`]. Thread-local rather
    /// than process-global so one process can host several concurrent
    /// worker loops (the in-process daemon tests and benches do).
    static JOB_CTX: std::cell::RefCell<Option<JobCtx>> = const { std::cell::RefCell::new(None) };
}

/// Install the elastic-worker fabric provider: every world built on a
/// thread that is inside [`with_job_ctx`] runs as TCP rank
/// `ctx.rank` of the job's world; worlds built on threads with no job
/// context fall back to the in-process backend. Idempotent across calls
/// from multiple worker loops; returns `false` if a *different* provider
/// (the `pmrun` env provider) was already installed.
pub fn install_job_fabric() -> bool {
    use std::sync::atomic::{AtomicBool, Ordering};
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.load(Ordering::SeqCst) {
        return true;
    }
    let won = patternlets_mp::install_fabric_provider(Box::new(|spec: &WorldSpec| {
        let ctx = JOB_CTX.with(|slot| slot.borrow().clone());
        match ctx {
            Some(ctx) => provide_job(&ctx, spec),
            None => Ok(None),
        }
    }));
    if won {
        INSTALLED.store(true, Ordering::SeqCst);
    }
    won
}

/// Run `f` with `ctx` as this thread's current job: worlds `f` builds go
/// over TCP as the job's rank. The slot is cleared on exit **even if `f`
/// panics**, so a failed patternlet cannot leak its transport context
/// into the worker's next job.
pub fn with_job_ctx<R>(ctx: JobCtx, f: impl FnOnce() -> R) -> R {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            JOB_CTX.with(|slot| *slot.borrow_mut() = None);
        }
    }
    JOB_CTX.with(|slot| *slot.borrow_mut() = Some(ctx));
    let _reset = Reset;
    f()
}

fn provide_job(ctx: &JobCtx, spec: &WorldSpec) -> Result<Option<ProvidedWorld>> {
    // Capture the job's epoch zero point on the FIRST consult — before
    // any skip/error branch, so skipped small worlds still advance the
    // per-job ordinal identically on every worker.
    let zero = *ctx.epoch_zero.get_or_init(|| spec.epoch);
    let ordinal = spec.epoch.saturating_sub(zero);
    if spec.np > ctx.np {
        return Err(Error::InvalidConfig(format!(
            "world wants {} ranks but the job was scheduled onto {} workers; \
             submit with np {} (or more)",
            spec.np, ctx.np, spec.np
        )));
    }
    if ctx.rank >= spec.np {
        return Ok(Some(ProvidedWorld::Skip));
    }
    let mut spec = spec.clone();
    spec.epoch = ctx.epoch_base + ordinal;
    let fabric = TcpFabric::establish_with_chaos(&ctx.rendezvous, ctx.rank, &spec, ctx.chaos)?;
    Ok(Some(ProvidedWorld::Rank {
        rank: ctx.rank,
        fabric: Arc::new(fabric),
    }))
}

fn provide(env: &NetEnv, spec: &WorldSpec) -> Result<Option<ProvidedWorld>> {
    if spec.np > env.np {
        return Err(Error::InvalidConfig(format!(
            "world wants {} ranks but pmrun launched only {} processes; \
             re-run with -np {} (or more)",
            spec.np, env.np, spec.np
        )));
    }
    if env.rank >= spec.np {
        return Ok(Some(ProvidedWorld::Skip));
    }
    // Respawned workers start their epoch numbering at the survivors'
    // current retry round; fresh jobs have epoch_base == 0 and this is
    // the identity.
    let mut spec = spec.clone();
    spec.epoch += env.epoch_base;
    let fabric = shm::establish(
        &env.rendezvous,
        env.rank,
        &spec,
        env.chaos,
        env.fabric,
        &env.shm_dir,
        &shm::host_id(),
    )?;
    Ok(Some(ProvidedWorld::Rank {
        rank: env.rank,
        fabric,
    }))
}
