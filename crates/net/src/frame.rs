//! The wire format: length-prefixed, checksummed frames over a TCP stream.
//!
//! Every frame is `u32` little-endian body length, then a `u32` CRC-32
//! covering **the length prefix and the body**, then the body: one kind
//! byte followed by the kind's fields. Integers are little-endian;
//! strings and payloads are length-prefixed byte runs. The payload bytes
//! inside an [`Frame::Env`] are exactly the [`patternlets_mp::Datatype`]
//! encoding the in-process backend already uses — the network layer
//! never re-encodes application data, it just moves the same bytes
//! across a socket instead of across a thread boundary.
//!
//! Folding the length prefix into the checksum matters for framing: a
//! flipped length byte misdirects the reader to a wrong frame boundary,
//! and a body-only CRC would report that as damage to the *next* frame
//! (or, for an inflated length, leave the reader waiting on bytes that
//! never come). With the prefix covered, the mismatch is pinned to the
//! frame that was actually corrupted.
//!
//! Decoding is strict: truncated bodies, trailing garbage, over-long
//! frames, checksum mismatches, and unknown kind bytes are all rejected
//! with [`Error::Codec`](patternlets_core::Error::Codec) rather than
//! guessed at. A CRC mismatch (error message prefixed [`CRC_MISMATCH`])
//! means the *stream* is untrustworthy, not just the frame: the fabric
//! reacts by tearing the connection down and resuming from the send ring
//! rather than decoding garbage. [`read_frame`] is also timeout-aware:
//! on a socket armed with a read timeout, silence *between* frames is
//! reported as [`IDLE_TIMEOUT`] (the caller decides whether to keep
//! waiting) while silence *inside* a frame is [`MID_FRAME_STALL`] — a
//! stalled peer can no longer pin the reader thread on a `read_exact`
//! that never returns. The property tests in `tests/wire_codec.rs` fuzz
//! both directions.

use std::io::{Read, Write};

use patternlets_core::{crc32, crc32_extend, Error, Result};

/// Error-message prefix for checksum failures, so the transport can tell
/// "corrupt stream" apart from "malformed frame" without a new error type.
pub const CRC_MISMATCH: &str = "frame crc mismatch";

/// Error-message prefix for a read timeout that fired with *no* bytes of
/// the next frame read. The stream is idle, not damaged: the fabric's
/// reader keeps waiting (peer liveness is the heartbeat layer's verdict,
/// not this one's), while handshake waits treat it as "no reply".
pub const IDLE_TIMEOUT: &str = "idle between frames";

/// Error-message prefix for a read timeout that fired *inside* a frame —
/// the peer went silent mid-record. The rest of the frame may never
/// arrive, so the stream cannot be resynchronized in place; the fabric
/// reacts exactly as it does to a CRC mismatch: tear down and resume.
pub const MID_FRAME_STALL: &str = "peer stalled mid-frame";

/// Upper bound on one frame's body, protecting the reader from garbage
/// length prefixes (64 MiB is far above any patternlet payload).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// One message of the peer-to-peer (and rendezvous) protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake: who is dialing, for which world epoch.
    Hello {
        /// World-creation ordinal the connection belongs to.
        epoch: u64,
        /// The dialing process's world rank.
        rank: u64,
    },
    /// One application envelope, fields mirroring
    /// [`patternlets_mp::Envelope`] plus the chaos displacement count.
    Env {
        /// Communicator id the message travels on.
        comm_id: u64,
        /// Sender, in the communicator's local numbering.
        src: u64,
        /// Message tag (negative = runtime-internal).
        tag: i32,
        /// Element type name (interned back to `&'static str` on receipt).
        type_name: String,
        /// Element count.
        count: u64,
        /// Per-sender sequence number (receiver dedup).
        seq: u64,
        /// Synchronous-send handshake flag.
        needs_ack: bool,
        /// Chaos reordering: deliver ahead of up to this many queued
        /// envelopes from other senders.
        overtake: u32,
        /// The `Datatype`-encoded payload.
        payload: Vec<u8>,
    },
    /// The sending rank's body returned normally; a subsequent EOF on
    /// this connection is a clean exit, not a failure.
    Finish {
        /// The finished world rank.
        rank: u64,
    },
    /// The sending process announces a failed rank (fault-plan kill or
    /// panic) so every peer converges on the same membership verdict.
    Failed {
        /// The failed world rank.
        rank: u64,
    },
    /// One contribution to a message-free agreement round
    /// (`Comm::agree`/`Comm::shrink`).
    Agree {
        /// Communicator id of the round.
        comm_id: u64,
        /// Agreement kind (agree vs shrink).
        kind: u8,
        /// Agreement sequence number on that communicator.
        seq: u64,
        /// Contributing world rank.
        rank: u64,
        /// Contributed value.
        value: u64,
    },
    /// Heartbeat; refreshes the peer's liveness clock and piggybacks the
    /// sender's cumulative count of *sequenced* frames received on this
    /// peer connection, so the receiver can prune its send ring (every
    /// frame up to `seen` can never need replaying).
    Ping {
        /// Sequenced frames the sender has received from this peer so far.
        seen: u64,
    },
    /// Worker → rendezvous: my listener is up at `addr` for `epoch`.
    Register {
        /// World-creation ordinal being rendezvoused.
        epoch: u64,
        /// Registering world rank.
        rank: u64,
        /// World size — the rendezvous completes after `np` registrations.
        np: u64,
        /// The registrant's listener address (`host:port`).
        addr: String,
    },
    /// Rendezvous → worker: every member's listener address, rank order.
    Table {
        /// Listener addresses indexed by world rank.
        addrs: Vec<String>,
    },
    /// Worker → launcher: one rank's metrics snapshot, in the
    /// `patternlets_metrics::wire` encoding. Pushed periodically (and at
    /// exit) to the launcher's aggregation listener, which merges the
    /// snapshots across processes for the Prometheus/status views.
    Metrics {
        /// The reporting world rank.
        rank: u64,
        /// `patternlets_metrics::wire::encode` output.
        payload: Vec<u8>,
    },
    /// Reconnect handshake, both directions: "this is rank `rank`
    /// re-dialing for `epoch`; I have received `recv_seq` sequenced frames
    /// from you — replay everything after that." The acceptor answers
    /// with its own `Resume` before either side resumes traffic.
    Resume {
        /// World-creation ordinal the connection belongs to.
        epoch: u64,
        /// The sending process's world rank.
        rank: u64,
        /// Sequenced frames the sender had received before the cut.
        recv_seq: u64,
    },
    /// Worker → daemon: join `pmserve`'s elastic pool. The connection
    /// this arrives on becomes the worker's long-lived control channel;
    /// its EOF is how the daemon learns the worker left (or died).
    WorkerHello {
        /// The worker's OS process id, for the `/workers` view.
        pid: u64,
        /// The worker's host, for the `/workers` view and (eventually)
        /// placement-aware scheduling; workers on the daemon's own host
        /// are candidates for the shared-memory fabric.
        host: String,
    },
    /// Daemon → worker: run one rank of a queued job. The worker plays
    /// world rank `rank` of an `np`-rank world; every world the
    /// patternlet builds rendezvouses (through the daemon's shared
    /// [`RendezvousCore`](crate::rendezvous::RendezvousCore)) inside the
    /// job's private epoch block starting at `epoch_base`.
    JobAssign {
        /// Daemon-assigned job id.
        job: u64,
        /// Registry name of the patternlet to run (`family/program`).
        patternlet: String,
        /// World size of the job.
        np: u64,
        /// The rank this worker plays.
        rank: u64,
        /// First epoch of the job's private rendezvous block.
        epoch_base: u64,
        /// Directive toggle (`--on`).
        on: bool,
        /// Wire-chaos plan in `PMRUN_NET_CHAOS` env-value form; empty =
        /// chaos off.
        chaos: String,
        /// Capture an execution trace: the worker runs the patternlet
        /// under a [`patternlets_trace::Tracer`] and ships the Chrome
        /// export back as a [`Frame::JobTrace`] before `JobDone`.
        trace: bool,
    },
    /// Worker → daemon: one line of a job's captured stdout, streamed as
    /// it is emitted so gateway clients can watch live.
    JobLine {
        /// The job the line belongs to.
        job: u64,
        /// Emitting world rank.
        rank: u64,
        /// The text, without a trailing newline.
        line: String,
    },
    /// Worker → daemon: one rank's job-scoped metrics snapshot
    /// (cumulative over the job; latest wins), for the fleet-wide
    /// `/metrics` aggregation keyed by job id.
    JobMetrics {
        /// The job the snapshot belongs to.
        job: u64,
        /// The reporting world rank.
        rank: u64,
        /// `patternlets_metrics::wire::encode` output.
        payload: Vec<u8>,
    },
    /// Worker → daemon: this worker's rank of the job terminated.
    JobDone {
        /// The finished job.
        job: u64,
        /// The finished world rank.
        rank: u64,
        /// Did the rank body complete without error?
        ok: bool,
        /// Failure description when `!ok` (panic message, `RankFailed`
        /// rank, unknown-patternlet complaint); empty on success.
        error: String,
    },
    /// Daemon → worker: the daemon is draining; finish up and exit.
    Shutdown,
    /// Clock-offset probe, sent to rank 0 right after the peer mesh is
    /// established: `t0` is the prober's wall clock (Unix ns) at send.
    /// Rank 0 answers with [`Frame::ClockReply`]; the prober combines
    /// the echoed `t0`, its own receive time `t1`, and the replier's
    /// clock `s` into the RTT-midpoint offset estimate `s − (t0+t1)/2`.
    ClockProbe {
        /// The prober's wall clock (Unix ns) when the probe left.
        t0: u64,
    },
    /// Reply to a [`Frame::ClockProbe`]: echoes the probe's `t0` (so a
    /// late reply can't close the wrong sample) plus the replier's own
    /// wall clock at the moment it handled the probe.
    ClockReply {
        /// The probe's `t0`, echoed verbatim.
        t0: u64,
        /// The replier's wall clock (Unix ns) when it saw the probe.
        server_ns: u64,
    },
    /// Worker → daemon: one rank's Chrome-trace export for a traced job,
    /// sent after the rank body finishes and before `JobDone`. The daemon
    /// merges all ranks' exports with
    /// `patternlets_trace::chrome::merge_chrome_json` and serves the
    /// result at `GET /jobs/:id/trace`.
    JobTrace {
        /// The job the trace belongs to.
        job: u64,
        /// The reporting world rank.
        rank: u64,
        /// `to_chrome_json_with_base` output (UTF-8 JSON).
        json: String,
    },
}

impl Frame {
    /// Is this frame *sequenced* — counted by both ends of a peer
    /// connection and replayed from the send ring across a reconnect?
    ///
    /// Sequenced frames carry world state that must arrive exactly once
    /// in order ([`Frame::Env`], [`Frame::Finish`], [`Frame::Failed`],
    /// [`Frame::Agree`]). Everything else is connection plumbing
    /// (handshakes, heartbeats, rendezvous, metrics) that is regenerated
    /// rather than replayed, so it stays outside the sequence space —
    /// both sides must agree exactly on this classification or resume
    /// counts drift.
    pub fn is_sequenced(&self) -> bool {
        matches!(
            self,
            Frame::Env { .. } | Frame::Finish { .. } | Frame::Failed { .. } | Frame::Agree { .. }
        )
    }
}

const KIND_HELLO: u8 = 0;
const KIND_ENV: u8 = 1;
const KIND_FINISH: u8 = 2;
const KIND_FAILED: u8 = 3;
const KIND_AGREE: u8 = 4;
const KIND_PING: u8 = 5;
const KIND_REGISTER: u8 = 6;
const KIND_TABLE: u8 = 7;
const KIND_METRICS: u8 = 8;
const KIND_RESUME: u8 = 9;
const KIND_WORKER_HELLO: u8 = 10;
const KIND_JOB_ASSIGN: u8 = 11;
const KIND_JOB_LINE: u8 = 12;
const KIND_JOB_METRICS: u8 = 13;
const KIND_JOB_DONE: u8 = 14;
const KIND_SHUTDOWN: u8 = 15;
const KIND_CLOCK_PROBE: u8 = 16;
const KIND_CLOCK_REPLY: u8 = 17;
const KIND_JOB_TRACE: u8 = 18;

struct BodyWriter(Vec<u8>);

impl BodyWriter {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(Error::Codec(format!(
                "frame truncated: wanted {n} more bytes, {} left",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }
    fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?).map_err(|_| Error::Codec("non-UTF8 string field".into()))
    }
    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after frame body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encode `frame` as one length-prefixed wire record.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut w = BodyWriter(Vec::with_capacity(32));
    match frame {
        Frame::Hello { epoch, rank } => {
            w.u8(KIND_HELLO);
            w.u64(*epoch);
            w.u64(*rank);
        }
        Frame::Env {
            comm_id,
            src,
            tag,
            type_name,
            count,
            seq,
            needs_ack,
            overtake,
            payload,
        } => {
            w.u8(KIND_ENV);
            w.u64(*comm_id);
            w.u64(*src);
            w.i32(*tag);
            w.string(type_name);
            w.u64(*count);
            w.u64(*seq);
            w.u8(u8::from(*needs_ack));
            w.u32(*overtake);
            w.bytes(payload);
        }
        Frame::Finish { rank } => {
            w.u8(KIND_FINISH);
            w.u64(*rank);
        }
        Frame::Failed { rank } => {
            w.u8(KIND_FAILED);
            w.u64(*rank);
        }
        Frame::Agree {
            comm_id,
            kind,
            seq,
            rank,
            value,
        } => {
            w.u8(KIND_AGREE);
            w.u64(*comm_id);
            w.u8(*kind);
            w.u64(*seq);
            w.u64(*rank);
            w.u64(*value);
        }
        Frame::Ping { seen } => {
            w.u8(KIND_PING);
            w.u64(*seen);
        }
        Frame::Register {
            epoch,
            rank,
            np,
            addr,
        } => {
            w.u8(KIND_REGISTER);
            w.u64(*epoch);
            w.u64(*rank);
            w.u64(*np);
            w.string(addr);
        }
        Frame::Table { addrs } => {
            w.u8(KIND_TABLE);
            w.u32(addrs.len() as u32);
            for addr in addrs {
                w.string(addr);
            }
        }
        Frame::Metrics { rank, payload } => {
            w.u8(KIND_METRICS);
            w.u64(*rank);
            w.bytes(payload);
        }
        Frame::Resume {
            epoch,
            rank,
            recv_seq,
        } => {
            w.u8(KIND_RESUME);
            w.u64(*epoch);
            w.u64(*rank);
            w.u64(*recv_seq);
        }
        Frame::WorkerHello { pid, host } => {
            w.u8(KIND_WORKER_HELLO);
            w.u64(*pid);
            w.string(host);
        }
        Frame::JobAssign {
            job,
            patternlet,
            np,
            rank,
            epoch_base,
            on,
            chaos,
            trace,
        } => {
            w.u8(KIND_JOB_ASSIGN);
            w.u64(*job);
            w.string(patternlet);
            w.u64(*np);
            w.u64(*rank);
            w.u64(*epoch_base);
            w.u8(u8::from(*on));
            w.string(chaos);
            w.u8(u8::from(*trace));
        }
        Frame::JobLine { job, rank, line } => {
            w.u8(KIND_JOB_LINE);
            w.u64(*job);
            w.u64(*rank);
            w.string(line);
        }
        Frame::JobMetrics { job, rank, payload } => {
            w.u8(KIND_JOB_METRICS);
            w.u64(*job);
            w.u64(*rank);
            w.bytes(payload);
        }
        Frame::JobDone {
            job,
            rank,
            ok,
            error,
        } => {
            w.u8(KIND_JOB_DONE);
            w.u64(*job);
            w.u64(*rank);
            w.u8(u8::from(*ok));
            w.string(error);
        }
        Frame::Shutdown => {
            w.u8(KIND_SHUTDOWN);
        }
        Frame::ClockProbe { t0 } => {
            w.u8(KIND_CLOCK_PROBE);
            w.u64(*t0);
        }
        Frame::ClockReply { t0, server_ns } => {
            w.u8(KIND_CLOCK_REPLY);
            w.u64(*t0);
            w.u64(*server_ns);
        }
        Frame::JobTrace { job, rank, json } => {
            w.u8(KIND_JOB_TRACE);
            w.u64(*job);
            w.u64(*rank);
            w.string(json);
        }
    }
    let body = w.0;
    let len_bytes = (body.len() as u32).to_le_bytes();
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&frame_crc(&len_bytes, &body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// The frame checksum: CRC-32 over the length prefix, continued over the
/// body, without materializing their concatenation.
fn frame_crc(len_bytes: &[u8; 4], body: &[u8]) -> u32 {
    crc32_extend(crc32(len_bytes), body)
}

/// Decode one frame body (without the length prefix). Strict: truncated
/// fields, trailing bytes, and unknown kinds are [`Error::Codec`].
pub fn decode_body(body: &[u8]) -> Result<Frame> {
    let mut r = BodyReader { buf: body, pos: 0 };
    let frame = match r.u8()? {
        KIND_HELLO => Frame::Hello {
            epoch: r.u64()?,
            rank: r.u64()?,
        },
        KIND_ENV => Frame::Env {
            comm_id: r.u64()?,
            src: r.u64()?,
            tag: r.i32()?,
            type_name: r.string()?,
            count: r.u64()?,
            seq: r.u64()?,
            needs_ack: match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(Error::Codec(format!("bad needs_ack byte {other}"))),
            },
            overtake: r.u32()?,
            payload: r.bytes()?,
        },
        KIND_FINISH => Frame::Finish { rank: r.u64()? },
        KIND_FAILED => Frame::Failed { rank: r.u64()? },
        KIND_AGREE => Frame::Agree {
            comm_id: r.u64()?,
            kind: r.u8()?,
            seq: r.u64()?,
            rank: r.u64()?,
            value: r.u64()?,
        },
        KIND_PING => Frame::Ping { seen: r.u64()? },
        KIND_REGISTER => Frame::Register {
            epoch: r.u64()?,
            rank: r.u64()?,
            np: r.u64()?,
            addr: r.string()?,
        },
        KIND_TABLE => {
            let n = r.u32()? as usize;
            if n > MAX_FRAME_LEN / 4 {
                return Err(Error::Codec(format!("absurd table length {n}")));
            }
            let mut addrs = Vec::with_capacity(n);
            for _ in 0..n {
                addrs.push(r.string()?);
            }
            Frame::Table { addrs }
        }
        KIND_METRICS => Frame::Metrics {
            rank: r.u64()?,
            payload: r.bytes()?,
        },
        KIND_RESUME => Frame::Resume {
            epoch: r.u64()?,
            rank: r.u64()?,
            recv_seq: r.u64()?,
        },
        KIND_WORKER_HELLO => Frame::WorkerHello {
            pid: r.u64()?,
            host: r.string()?,
        },
        KIND_JOB_ASSIGN => Frame::JobAssign {
            job: r.u64()?,
            patternlet: r.string()?,
            np: r.u64()?,
            rank: r.u64()?,
            epoch_base: r.u64()?,
            on: match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(Error::Codec(format!("bad on byte {other}"))),
            },
            chaos: r.string()?,
            trace: match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(Error::Codec(format!("bad trace byte {other}"))),
            },
        },
        KIND_JOB_LINE => Frame::JobLine {
            job: r.u64()?,
            rank: r.u64()?,
            line: r.string()?,
        },
        KIND_JOB_METRICS => Frame::JobMetrics {
            job: r.u64()?,
            rank: r.u64()?,
            payload: r.bytes()?,
        },
        KIND_JOB_DONE => Frame::JobDone {
            job: r.u64()?,
            rank: r.u64()?,
            ok: match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(Error::Codec(format!("bad ok byte {other}"))),
            },
            error: r.string()?,
        },
        KIND_SHUTDOWN => Frame::Shutdown,
        KIND_CLOCK_PROBE => Frame::ClockProbe { t0: r.u64()? },
        KIND_CLOCK_REPLY => Frame::ClockReply {
            t0: r.u64()?,
            server_ns: r.u64()?,
        },
        KIND_JOB_TRACE => Frame::JobTrace {
            job: r.u64()?,
            rank: r.u64()?,
            json: r.string()?,
        },
        other => return Err(Error::Codec(format!("unknown frame kind {other}"))),
    };
    r.finish()?;
    Ok(frame)
}

fn check_crc(expected: u32, len_bytes: &[u8; 4], body: &[u8]) -> Result<()> {
    let actual = frame_crc(len_bytes, body);
    if actual != expected {
        return Err(Error::Codec(format!(
            "{CRC_MISMATCH}: header says {expected:#010x}, length+body hash to {actual:#010x}"
        )));
    }
    Ok(())
}

/// Decode one complete wire record (length prefix + CRC + body), as
/// written by [`encode_frame`]. Used by the property tests; the streaming
/// path is [`read_frame`].
pub fn decode_frame(record: &[u8]) -> Result<Frame> {
    if record.len() < 8 {
        return Err(Error::Codec("record shorter than its header".into()));
    }
    let len = u32::from_le_bytes(record[..4].try_into().expect("4")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::Codec(format!("frame length {len} exceeds cap")));
    }
    if record.len() - 8 != len {
        return Err(Error::Codec(format!(
            "length prefix says {len} but {} body bytes present",
            record.len() - 8
        )));
    }
    let crc = u32::from_le_bytes(record[4..8].try_into().expect("4"));
    check_crc(crc, record[..4].try_into().expect("4"), &record[8..])?;
    decode_body(&record[8..])
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one frame from `r`. Returns `Ok(None)` on clean EOF (no bytes at
/// all); a mid-frame EOF, a checksum mismatch, or any I/O error is
/// [`Error::Codec`]. On a reader armed with a read timeout, a timeout
/// before any byte of the next frame is an [`IDLE_TIMEOUT`] error and a
/// timeout after one is a [`MID_FRAME_STALL`] error — the caller picks
/// which of those tears the stream down.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    let mut head = [0u8; 8];
    let mut got = 0;
    while got < 8 {
        match r.read(&mut head[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(Error::Codec("EOF inside frame header".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && got == 0 => {
                return Err(Error::Codec(format!("{IDLE_TIMEOUT}: {e}")))
            }
            Err(e) if is_timeout(&e) => {
                return Err(Error::Codec(format!(
                    "{MID_FRAME_STALL}: {got}/8 header bytes then silence: {e}"
                )))
            }
            Err(e) => return Err(Error::Codec(format!("read error: {e}"))),
        }
    }
    let len = u32::from_le_bytes(head[..4].try_into().expect("4")) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::Codec(format!("frame length {len} exceeds cap")));
    }
    let mut body = vec![0u8; len];
    let mut at = 0;
    while at < len {
        match r.read(&mut body[at..]) {
            Ok(0) => {
                return Err(Error::Codec(format!(
                    "EOF inside frame body: {at}/{len} bytes arrived"
                )))
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                return Err(Error::Codec(format!(
                    "{MID_FRAME_STALL}: {at}/{len} body bytes then silence: {e}"
                )))
            }
            Err(e) => return Err(Error::Codec(format!("read error: {e}"))),
        }
    }
    let crc = u32::from_le_bytes(head[4..8].try_into().expect("4"));
    check_crc(crc, head[..4].try_into().expect("4"), &body)?;
    decode_body(&body).map(Some)
}

/// Write one frame to `w` (single `write_all`, so concurrent writers
/// guarded by a lock never interleave records).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode_frame(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let wire = encode_frame(&frame);
        assert_eq!(decode_frame(&wire).unwrap(), frame);
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF after");
    }

    #[test]
    fn every_kind_round_trips() {
        roundtrip(Frame::Hello { epoch: 3, rank: 1 });
        roundtrip(Frame::Env {
            comm_id: 7,
            src: 2,
            tag: -42,
            type_name: "i64".into(),
            count: 4,
            seq: 99,
            needs_ack: true,
            overtake: 2,
            payload: vec![1, 2, 3, 4],
        });
        roundtrip(Frame::Finish { rank: 0 });
        roundtrip(Frame::Failed { rank: 3 });
        roundtrip(Frame::Agree {
            comm_id: 1,
            kind: 1,
            seq: 0,
            rank: 2,
            value: u64::MAX,
        });
        roundtrip(Frame::Ping { seen: 12 });
        roundtrip(Frame::Resume {
            epoch: 2,
            rank: 1,
            recv_seq: 740,
        });
        roundtrip(Frame::Register {
            epoch: 0,
            rank: 3,
            np: 4,
            addr: "127.0.0.1:4096".into(),
        });
        roundtrip(Frame::Table {
            addrs: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
        });
        roundtrip(Frame::Metrics {
            rank: 2,
            payload: vec![1, 0, 0, 0, 0],
        });
        roundtrip(Frame::WorkerHello {
            pid: 4242,
            host: "node-a.example".into(),
        });
        roundtrip(Frame::JobAssign {
            job: 17,
            patternlet: "mpi/broadcast".into(),
            np: 4,
            rank: 2,
            epoch_base: 17 << 20,
            on: true,
            chaos: "7".into(),
            trace: true,
        });
        roundtrip(Frame::JobLine {
            job: 17,
            rank: 2,
            line: "2 of 4: héllo".into(),
        });
        roundtrip(Frame::JobMetrics {
            job: 17,
            rank: 0,
            payload: vec![1, 0, 0],
        });
        roundtrip(Frame::JobDone {
            job: 17,
            rank: 3,
            ok: false,
            error: "rank 1 failed".into(),
        });
        roundtrip(Frame::Shutdown);
        roundtrip(Frame::ClockProbe { t0: 1_700_000_000 });
        roundtrip(Frame::ClockReply {
            t0: 1_700_000_000,
            server_ns: 1_700_000_042,
        });
        roundtrip(Frame::JobTrace {
            job: 17,
            rank: 1,
            json: "{\"traceEvents\":[]}".into(),
        });
    }

    #[test]
    fn job_control_frames_are_unsequenced() {
        // The job-control plane must never enter the resume sequence
        // space: it is regenerated (or moot) after a reconnect.
        for frame in [
            Frame::WorkerHello {
                pid: 1,
                host: "h".into(),
            },
            Frame::JobAssign {
                job: 1,
                patternlet: "x".into(),
                np: 1,
                rank: 0,
                epoch_base: 0,
                on: false,
                chaos: String::new(),
                trace: false,
            },
            Frame::JobLine {
                job: 1,
                rank: 0,
                line: "l".into(),
            },
            Frame::JobMetrics {
                job: 1,
                rank: 0,
                payload: vec![],
            },
            Frame::JobDone {
                job: 1,
                rank: 0,
                ok: true,
                error: String::new(),
            },
            Frame::Shutdown,
            Frame::JobTrace {
                job: 1,
                rank: 0,
                json: String::new(),
            },
        ] {
            assert!(!frame.is_sequenced(), "{frame:?}");
        }
    }

    #[test]
    fn clock_frames_are_unsequenced() {
        // Clock probes are connection plumbing: regenerated per establish,
        // never replayed — replayed probes would poison offset estimates.
        assert!(!Frame::ClockProbe { t0: 1 }.is_sequenced());
        assert!(!Frame::ClockReply { t0: 1, server_ns: 2 }.is_sequenced());
    }

    #[test]
    fn truncated_metrics_frames_are_rejected() {
        let wire = encode_frame(&Frame::Metrics {
            rank: 1,
            payload: vec![9; 12],
        });
        for cut in 0..wire.len() {
            assert!(
                decode_frame(&wire[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let wire = encode_frame(&Frame::Env {
            comm_id: 7,
            src: 2,
            tag: 5,
            type_name: "String".into(),
            count: 1,
            seq: 0,
            needs_ack: false,
            overtake: 0,
            payload: "héllo".as_bytes().to_vec(),
        });
        // Chop the record anywhere: never a panic, never a wrong decode.
        for cut in 0..wire.len() {
            assert!(
                decode_frame(&wire[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut wire = encode_frame(&Frame::Ping { seen: 0 });
        wire.extend_from_slice(&[0, 0, 0]);
        assert!(decode_frame(&wire).is_err());
        // Also when the garbage is inside the declared body length.
        let mut body = vec![super::KIND_PING];
        body.extend_from_slice(&[0; 8]);
        body.push(0xFF);
        assert!(decode_body(&body).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_caught_by_the_crc() {
        let wire = encode_frame(&Frame::Env {
            comm_id: 7,
            src: 2,
            tag: 5,
            type_name: "i64".into(),
            count: 1,
            seq: 3,
            needs_ack: false,
            overtake: 0,
            payload: vec![0xAB; 16],
        });
        // Flip every bit of the record — header included. Body and CRC
        // flips must be rejected as *checksum* errors; length-prefix flips
        // must be rejected too (as a length mismatch or a checksum error,
        // both of which tear the stream down), never decoded.
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut corrupt = wire.clone();
                corrupt[byte] ^= 1 << bit;
                let err = decode_frame(&corrupt).unwrap_err();
                if byte >= 4 {
                    assert!(
                        err.to_string().contains(CRC_MISMATCH),
                        "flip at {byte}:{bit} gave {err}"
                    );
                }
            }
        }
    }

    /// A corrupted *length prefix* must be caught on the frame that was
    /// corrupted — the stream reader must not misframe and either swallow
    /// the next record or hand back its bytes as a bogus decode.
    #[test]
    fn flipped_length_prefix_is_caught_at_this_frames_boundary() {
        let first = encode_frame(&Frame::Env {
            comm_id: 1,
            src: 0,
            tag: 9,
            type_name: "u64".into(),
            count: 2,
            seq: 0,
            needs_ack: false,
            overtake: 0,
            payload: vec![0x5A; 24],
        });
        let second = encode_frame(&Frame::Ping { seen: 3 });
        for bit in 0..8 {
            let mut stream = first.clone();
            stream[0] ^= 1 << bit; // length low byte: shrink or grow
            stream.extend_from_slice(&second);
            let mut cursor = std::io::Cursor::new(stream);
            let err = read_frame(&mut cursor).unwrap_err();
            assert!(
                err.to_string().contains(CRC_MISMATCH) || err.to_string().contains("EOF"),
                "flip of length bit {bit} gave {err}"
            );
        }
    }

    /// A reader whose underlying stream times out: some bytes arrive,
    /// then every further read reports `WouldBlock` — the in-memory
    /// stand-in for a socket with `set_read_timeout` and a stalled peer.
    struct StallAfter {
        data: Vec<u8>,
        at: usize,
    }

    impl Read for StallAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at >= self.data.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "stalled",
                ));
            }
            let n = buf.len().min(self.data.len() - self.at);
            buf[..n].copy_from_slice(&self.data[self.at..self.at + n]);
            self.at += n;
            Ok(n)
        }
    }

    #[test]
    fn timeout_between_frames_is_idle_not_fatal() {
        let mut idle = StallAfter {
            data: Vec::new(),
            at: 0,
        };
        let err = read_frame(&mut idle).unwrap_err();
        assert!(err.to_string().contains(IDLE_TIMEOUT), "{err}");
        assert!(!err.to_string().contains(MID_FRAME_STALL), "{err}");
    }

    #[test]
    fn stall_inside_header_or_body_is_reported_as_a_stall() {
        let wire = encode_frame(&Frame::Env {
            comm_id: 3,
            src: 1,
            tag: 0,
            type_name: "u8".into(),
            count: 8,
            seq: 1,
            needs_ack: false,
            overtake: 0,
            payload: vec![7; 8],
        });
        // Cut anywhere mid-record: the read must return promptly with a
        // stall verdict instead of blocking on the missing tail forever.
        for cut in 1..wire.len() {
            let mut stalled = StallAfter {
                data: wire[..cut].to_vec(),
                at: 0,
            };
            let err = read_frame(&mut stalled).unwrap_err();
            assert!(
                err.to_string().contains(MID_FRAME_STALL),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn sequenced_classification_is_stable() {
        assert!(Frame::Finish { rank: 0 }.is_sequenced());
        assert!(Frame::Failed { rank: 0 }.is_sequenced());
        assert!(!Frame::Ping { seen: 0 }.is_sequenced());
        assert!(!Frame::Hello { epoch: 0, rank: 0 }.is_sequenced());
        assert!(!Frame::Resume {
            epoch: 0,
            rank: 0,
            recv_seq: 0
        }
        .is_sequenced());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(matches!(decode_body(&[200]), Err(Error::Codec(_))));
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.push(0);
        assert!(decode_frame(&wire).is_err());
        let mut cursor = std::io::Cursor::new(wire);
        assert!(read_frame(&mut cursor).is_err());
    }
}
