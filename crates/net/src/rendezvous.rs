//! The rendezvous: how N worker processes find each other's listeners.
//!
//! `pmrun` starts one [`serve`] loop before spawning workers and passes
//! its address down via `PMRUN_RENDEZVOUS`. Each worker, per world it
//! builds, binds a fresh listener and [`register`]s `(epoch, rank, np,
//! addr)`; once `np` distinct ranks have registered for an epoch the
//! server replies to each with the full address table and forgets the
//! epoch. Epochs are independent, so ranks that skip a small world (their
//! rank is outside it) can already be registering for the next one while
//! slower ranks are still inside the current one.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use patternlets_core::{Error, Result};

use crate::frame::{encode_frame, read_frame, write_frame, Frame};

/// How long a worker waits for its siblings to register before giving up
/// — generous, because a missing sibling means the job is already lost.
pub const REGISTER_TIMEOUT: Duration = Duration::from_secs(30);

struct EpochGroup {
    np: usize,
    /// rank → (listener address, the registrant's connection).
    entries: HashMap<usize, (String, TcpStream)>,
}

/// Bind a rendezvous server on loopback and serve registrations on a
/// detached daemon thread for the life of the process. Returns the bound
/// address to hand to workers.
pub fn serve() -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    std::thread::Builder::new()
        .name("pmrun-rendezvous".into())
        .spawn(move || serve_loop(listener))?;
    Ok(addr)
}

fn serve_loop(listener: TcpListener) {
    let mut epochs: HashMap<u64, EpochGroup> = HashMap::new();
    for conn in listener.incoming() {
        let Ok(mut conn) = conn else { continue };
        // A worker registers immediately after connecting, so a short
        // sequential read here cannot stall the loop for long; the
        // timeout protects against a half-dead client.
        let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
        let Ok(Some(Frame::Register {
            epoch,
            rank,
            np,
            addr,
        })) = read_frame(&mut conn)
        else {
            continue;
        };
        let group = epochs.entry(epoch).or_insert_with(|| EpochGroup {
            np: np as usize,
            entries: HashMap::new(),
        });
        group.entries.insert(rank as usize, (addr, conn));
        if group.entries.len() == group.np {
            let group = epochs.remove(&epoch).expect("just inserted");
            let addrs: Vec<String> = (0..group.np).map(|r| group.entries[&r].0.clone()).collect();
            let table = encode_frame(&Frame::Table {
                addrs: addrs.clone(),
            });
            for (_, (_, mut conn)) in group.entries {
                let _ = conn.write_all(&table);
            }
        }
    }
}

/// Register this rank's listener for `epoch` and block until the full
/// address table arrives (every member registered).
pub fn register(
    server: &str,
    epoch: u64,
    rank: usize,
    np: usize,
    my_addr: &str,
) -> Result<Vec<String>> {
    let mut conn = TcpStream::connect(server)
        .map_err(|e| Error::Codec(format!("cannot reach rendezvous at {server}: {e}")))?;
    conn.set_read_timeout(Some(REGISTER_TIMEOUT))
        .map_err(|e| Error::Codec(format!("rendezvous socket setup: {e}")))?;
    write_frame(
        &mut conn,
        &Frame::Register {
            epoch,
            rank: rank as u64,
            np: np as u64,
            addr: my_addr.to_string(),
        },
    )
    .map_err(|e| Error::Codec(format!("rendezvous register: {e}")))?;
    match read_frame(&mut conn)? {
        Some(Frame::Table { addrs }) if addrs.len() == np => Ok(addrs),
        Some(Frame::Table { addrs }) => Err(Error::Codec(format!(
            "rendezvous table has {} entries, expected {np}",
            addrs.len()
        ))),
        other => Err(Error::Codec(format!(
            "unexpected rendezvous reply: {other:?} (a sibling worker may have died before \
             registering)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_epoch_gets_everyone_the_same_table() {
        let server = serve().unwrap().to_string();
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let server = server.clone();
                std::thread::spawn(move || {
                    register(&server, 0, rank, 3, &format!("127.0.0.1:{}", 9000 + rank)).unwrap()
                })
            })
            .collect();
        let tables: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for table in &tables {
            assert_eq!(table, &tables[0]);
            assert_eq!(table[2], "127.0.0.1:9002", "rank order preserved");
        }
    }

    #[test]
    fn concurrent_epochs_do_not_mix() {
        let server = serve().unwrap().to_string();
        // Epoch 1's lone rank registers first, then epoch 0's pair.
        let s1 = server.clone();
        let later = std::thread::spawn(move || register(&s1, 1, 0, 1, "127.0.0.1:7001").unwrap());
        let t1 = later.join().unwrap();
        assert_eq!(t1, vec!["127.0.0.1:7001"]);
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let server = server.clone();
                std::thread::spawn(move || {
                    register(&server, 0, rank, 2, &format!("127.0.0.1:{}", 7100 + rank)).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().len(), 2);
        }
    }
}
