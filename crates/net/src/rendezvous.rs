//! The rendezvous: how N worker processes find each other's listeners.
//!
//! The membership state machine lives in [`RendezvousCore`], shared by
//! two front doors:
//!
//! * `pmrun` starts the classic one-shot [`serve`] loop before spawning
//!   workers and passes its address down via `PMRUN_RENDEZVOUS`;
//! * `pmserve` (the long-lived cluster daemon in `patternlets-serve`)
//!   folds the same core into its cluster listener, dispatching
//!   [`Frame::Register`] connections into [`RendezvousCore::admit`] while
//!   other first-frames (worker hellos) take the pool path.
//!
//! Each worker, per world it builds, binds a fresh listener and
//! [`register`]s `(epoch, rank, np, addr)`; once `np` distinct ranks have
//! registered for an epoch the core replies to each with the full address
//! table and forgets the epoch. Epochs are independent, so ranks that
//! skip a small world (their rank is outside it) can already be
//! registering for the next one while slower ranks are still inside the
//! current one — and, under `pmserve`, concurrent *jobs* rendezvous
//! through the same core because each job's worlds are namespaced into a
//! disjoint epoch block.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use patternlets_core::{Error, Result};

use crate::frame::{encode_frame, read_frame, write_frame, Frame};

/// How long a worker waits for its siblings to register before giving up
/// — generous, because a missing sibling means the job is already lost.
pub const REGISTER_TIMEOUT: Duration = Duration::from_secs(30);

struct EpochGroup {
    np: usize,
    /// rank → (listener address, the registrant's connection).
    entries: HashMap<usize, (String, TcpStream)>,
}

#[derive(Default)]
struct CoreState {
    epochs: HashMap<u64, EpochGroup>,
    /// Half-open epoch ranges whose jobs are known dead: registrations
    /// for them are refused on arrival (connection dropped) instead of
    /// parked forever. Grows by one entry per aborted job attempt.
    poisoned: Vec<(u64, u64)>,
}

impl CoreState {
    fn is_poisoned(&self, epoch: u64) -> bool {
        self.poisoned
            .iter()
            .any(|&(lo, hi)| lo <= epoch && epoch < hi)
    }
}

/// The reusable membership core: epoch-keyed registration groups, each
/// released (every registrant gets the full rank-ordered address table)
/// the moment its `np`-th distinct rank arrives.
///
/// Thread-safe; `pmserve` calls [`admit`](Self::admit) from many
/// connection-handling threads at once.
#[derive(Default)]
pub struct RendezvousCore {
    state: Mutex<CoreState>,
}

impl RendezvousCore {
    /// An empty core with no epochs in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one registration, parking `conn` until its epoch completes.
    /// When this registration is the epoch's last, every parked
    /// connection (this one included) is answered with the rank-ordered
    /// [`Frame::Table`] and the epoch is forgotten.
    pub fn admit(&self, epoch: u64, rank: usize, np: usize, addr: String, conn: TcpStream) {
        let complete = {
            let mut state = self.state.lock().expect("rendezvous lock");
            if state.is_poisoned(epoch) {
                // The job this world belongs to already lost a member;
                // dropping the connection fails the registrant now
                // instead of parking it until REGISTER_TIMEOUT.
                drop(state);
                drop(conn);
                return;
            }
            let group = state.epochs.entry(epoch).or_insert_with(|| EpochGroup {
                np,
                entries: HashMap::new(),
            });
            group.entries.insert(rank, (addr, conn));
            if group.entries.len() == group.np {
                state.epochs.remove(&epoch)
            } else {
                None
            }
        };
        if let Some(group) = complete {
            // Replies happen outside the lock: a slow registrant socket
            // must not stall other epochs' admissions.
            let addrs: Vec<String> = (0..group.np).map(|r| group.entries[&r].0.clone()).collect();
            let table = encode_frame(&Frame::Table { addrs });
            for (_, (_, mut conn)) in group.entries {
                let _ = conn.write_all(&table);
            }
        }
        // An incomplete epoch keeps waiting; abandoned epochs (a sibling
        // died before registering) are bounded by the registrants' own
        // REGISTER_TIMEOUT — their sockets error out and the entries are
        // overwritten or leak one map slot per lost epoch, which the
        // one-shot server never notices and the daemon's epoch blocks
        // make unreachable for future jobs.
    }

    /// Abort every pending epoch in `[lo, hi)` and poison the range:
    /// parked registrants have their connections dropped (their
    /// `register` fails immediately, reading as a died-sibling error) and
    /// later registrations for the range are refused on arrival. The
    /// daemon calls this with a job attempt's epoch block when a member
    /// worker dies, so surviving ranks fail fast instead of waiting out
    /// [`REGISTER_TIMEOUT`] on a rendezvous that can never complete.
    pub fn abort_block(&self, lo: u64, hi: u64) {
        let dropped: Vec<EpochGroup> = {
            let mut state = self.state.lock().expect("rendezvous lock");
            state.poisoned.push((lo, hi));
            let doomed: Vec<u64> = state
                .epochs
                .keys()
                .copied()
                .filter(|&e| lo <= e && e < hi)
                .collect();
            doomed
                .into_iter()
                .filter_map(|e| state.epochs.remove(&e))
                .collect()
        };
        // Connections close on drop, outside the lock.
        drop(dropped);
    }

    /// Number of epochs with at least one parked registrant (diagnostic).
    pub fn pending_epochs(&self) -> usize {
        self.state.lock().expect("rendezvous lock").epochs.len()
    }
}

/// Bind a rendezvous server on loopback and serve registrations on a
/// detached daemon thread for the life of the process. Returns the bound
/// address to hand to workers. (`pmrun`'s front door; `pmserve` embeds
/// [`RendezvousCore`] in its own listener instead.)
pub fn serve() -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    std::thread::Builder::new()
        .name("pmrun-rendezvous".into())
        .spawn(move || serve_loop(listener))?;
    Ok(addr)
}

fn serve_loop(listener: TcpListener) {
    let core = RendezvousCore::new();
    for conn in listener.incoming() {
        let Ok(mut conn) = conn else { continue };
        // A worker registers immediately after connecting, so a short
        // sequential read here cannot stall the loop for long; the
        // timeout protects against a half-dead client.
        let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
        let Ok(Some(Frame::Register {
            epoch,
            rank,
            np,
            addr,
        })) = read_frame(&mut conn)
        else {
            continue;
        };
        core.admit(epoch, rank as usize, np as usize, addr, conn);
    }
}

/// Register this rank's listener for `epoch` and block until the full
/// address table arrives (every member registered).
pub fn register(
    server: &str,
    epoch: u64,
    rank: usize,
    np: usize,
    my_addr: &str,
) -> Result<Vec<String>> {
    let mut conn = TcpStream::connect(server)
        .map_err(|e| Error::Codec(format!("cannot reach rendezvous at {server}: {e}")))?;
    conn.set_read_timeout(Some(REGISTER_TIMEOUT))
        .map_err(|e| Error::Codec(format!("rendezvous socket setup: {e}")))?;
    write_frame(
        &mut conn,
        &Frame::Register {
            epoch,
            rank: rank as u64,
            np: np as u64,
            addr: my_addr.to_string(),
        },
    )
    .map_err(|e| Error::Codec(format!("rendezvous register: {e}")))?;
    match read_frame(&mut conn)? {
        Some(Frame::Table { addrs }) if addrs.len() == np => Ok(addrs),
        Some(Frame::Table { addrs }) => Err(Error::Codec(format!(
            "rendezvous table has {} entries, expected {np}",
            addrs.len()
        ))),
        other => Err(Error::Codec(format!(
            "unexpected rendezvous reply: {other:?} (a sibling worker may have died before \
             registering)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_epoch_gets_everyone_the_same_table() {
        let server = serve().unwrap().to_string();
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let server = server.clone();
                std::thread::spawn(move || {
                    register(&server, 0, rank, 3, &format!("127.0.0.1:{}", 9000 + rank)).unwrap()
                })
            })
            .collect();
        let tables: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for table in &tables {
            assert_eq!(table, &tables[0]);
            assert_eq!(table[2], "127.0.0.1:9002", "rank order preserved");
        }
    }

    #[test]
    fn concurrent_epochs_do_not_mix() {
        let server = serve().unwrap().to_string();
        // Epoch 1's lone rank registers first, then epoch 0's pair.
        let s1 = server.clone();
        let later = std::thread::spawn(move || register(&s1, 1, 0, 1, "127.0.0.1:7001").unwrap());
        let t1 = later.join().unwrap();
        assert_eq!(t1, vec!["127.0.0.1:7001"]);
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let server = server.clone();
                std::thread::spawn(move || {
                    register(&server, 0, rank, 2, &format!("127.0.0.1:{}", 7100 + rank)).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().len(), 2);
        }
    }

    /// The shared core, driven directly (the way `pmserve` drives it):
    /// admissions from many threads, interleaved across epochs, each
    /// epoch released exactly when its last rank lands.
    #[test]
    fn core_releases_epochs_independently() {
        use std::sync::Arc;
        let core = Arc::new(RendezvousCore::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Feed the core raw sockets: each "registrant" is a connected
        // pair; the accept side is what admit() parks and answers.
        let mut clients = Vec::new();
        for (epoch, rank, np) in [(5u64, 0usize, 2usize), (6, 0, 1), (5, 1, 2)] {
            let client = TcpStream::connect(addr).unwrap();
            client
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let (server_side, _) = listener.accept().unwrap();
            core.admit(
                epoch,
                rank,
                np,
                format!("127.0.0.1:{}", 8000 + rank),
                server_side,
            );
            clients.push((epoch, client));
        }
        for (epoch, mut client) in clients {
            let frame = read_frame(&mut client).unwrap().unwrap();
            let Frame::Table { addrs } = frame else {
                panic!("expected a table, got {frame:?}")
            };
            match epoch {
                5 => assert_eq!(addrs.len(), 2),
                6 => assert_eq!(addrs, vec!["127.0.0.1:8000"]),
                _ => unreachable!(),
            }
        }
        assert_eq!(core.pending_epochs(), 0);
    }

    /// Aborting a block unsticks parked registrants immediately (their
    /// sockets close) and refuses later arrivals for the same range —
    /// both ends of the race between a worker death and its siblings'
    /// registrations.
    #[test]
    fn aborted_blocks_fail_fast_before_and_after() {
        use std::sync::Arc;
        let core = Arc::new(RendezvousCore::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let park = |epoch: u64| {
            let client = TcpStream::connect(addr).unwrap();
            client
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let (server_side, _) = listener.accept().unwrap();
            core.admit(epoch, 0, 2, "127.0.0.1:9100".into(), server_side);
            client
        };
        // Parked before the abort: epoch 100 is inside the block, 999 is
        // outside and must survive.
        let mut doomed = park(100);
        let survivor = park(999);
        core.abort_block(64, 128);
        let reply = read_frame(&mut doomed).unwrap();
        assert!(reply.is_none(), "doomed registrant should see EOF");
        // Arriving after the abort: refused on the spot.
        let mut late = park(101);
        assert!(read_frame(&mut late).unwrap().is_none());
        // The untouched epoch still completes normally.
        let mut peer = {
            let client = TcpStream::connect(addr).unwrap();
            let (server_side, _) = listener.accept().unwrap();
            core.admit(999, 1, 2, "127.0.0.1:9101".into(), server_side);
            client
        };
        drop(peer.set_read_timeout(Some(Duration::from_secs(5))));
        let mut survivor = survivor;
        for conn in [&mut survivor, &mut peer] {
            match read_frame(conn).unwrap() {
                Some(Frame::Table { addrs }) => assert_eq!(addrs.len(), 2),
                other => panic!("expected a table, got {other:?}"),
            }
        }
    }
}
