//! Model-checking the SPSC byte ring against a linear-scan reference.
//!
//! The ring ([`patternlets_core::spsc`]) is the load-bearing primitive
//! under the shm fabric: every wire frame between co-located ranks
//! crosses exactly one of these. Its correctness claim is small —
//! exactly-once, in-order byte delivery with a hard capacity bound —
//! so it is checkable against the dumbest possible reference: a
//! `VecDeque<u8>` mutated by linear scans. Proptest drives randomized
//! op sequences (variable-length pushes and pops, decoded from plain
//! words by bit-shifting, the same idiom as the mailbox model tests)
//! through both and demands they never disagree: not on the bytes, not
//! on the counts, not on the full/empty boundary behaviour.
//!
//! A final round pushes *wire frames* through a deliberately tiny ring
//! from another thread — records larger than the ring, forced
//! wraparound on every frame — and runs the unmodified TCP frame
//! decoder over the consumer, which is exactly the shm fabric's hot
//! path.

use patternlets_core::spsc::SpscRing;
use patternlets_net::frame::{encode_frame, read_frame, Frame};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::Read;

/// One scripted step, decoded from a plain word so proptest shrinks to
/// readable scripts: low bit picks the side, the rest sizes the record.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Offer an `n`-byte record; whatever fits is pushed.
    Push(usize),
    /// Ask for up to `n` bytes; whatever is queued comes out.
    Pop(usize),
}

fn decode(word: u32, max_record: usize) -> Op {
    let n = ((word >> 1) as usize % max_record) + 1;
    if word & 1 == 0 {
        Op::Push(n)
    } else {
        Op::Pop(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Single-threaded op scripts: after every step the ring and the
    /// reference deque hold byte-identical contents, and neither side
    /// ever over-fills or under-drains.
    #[test]
    fn ring_matches_the_linear_scan_reference(
        capacity in 1usize..48,
        ops in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let ring = SpscRing::heap(capacity);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        let mut model: VecDeque<u8> = VecDeque::new();
        // Byte stream: a counter mod 251 (prime, so wraparound misplacing
        // a byte can't alias back onto the right value).
        let mut next_byte = 0u64;
        for word in ops {
            match decode(word, capacity + 8) {
                Op::Push(n) => {
                    let record: Vec<u8> =
                        (next_byte..next_byte + n as u64).map(|b| (b % 251) as u8).collect();
                    let wrote = p.try_push(&record);
                    // Partial writes are the contract: exactly the free
                    // space is taken, in order, nothing else.
                    prop_assert_eq!(wrote, n.min(capacity - model.len()));
                    model.extend(&record[..wrote]);
                    next_byte += wrote as u64;
                }
                Op::Pop(n) => {
                    let mut buf = vec![0u8; n];
                    let got = c.try_pop(&mut buf);
                    prop_assert_eq!(got, n.min(model.len()));
                    let expected: Vec<u8> = model.drain(..got).collect();
                    prop_assert_eq!(&buf[..got], &expected[..]);
                }
            }
            // The bound, restated through the ring's own accounting.
            prop_assert_eq!(ring.len(), model.len());
            prop_assert!(ring.len() <= capacity);
        }
        // Final drain: everything still queued comes out in order.
        let mut rest = vec![0u8; capacity];
        let got = c.try_pop(&mut rest);
        prop_assert_eq!(got, model.len());
        let expected: Vec<u8> = model.drain(..).collect();
        prop_assert_eq!(&rest[..got], &expected[..]);
        prop_assert!(ring.is_empty());
    }

    /// The full/empty boundaries, pinned explicitly: a full ring takes
    /// zero bytes, an empty ring yields zero bytes, and neither state
    /// wedges — one pop reopens the producer, one push the consumer.
    #[test]
    fn full_and_empty_boundaries_are_exact(capacity in 1usize..32) {
        let ring = SpscRing::heap(capacity);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        let mut empty_buf = [0u8; 4];
        prop_assert_eq!(c.try_pop(&mut empty_buf), 0); // empty ring yields nothing
        let fill: Vec<u8> = (0..capacity as u8).collect();
        prop_assert_eq!(p.try_push(&fill), capacity);
        prop_assert_eq!(p.try_push(b"x"), 0); // full ring takes nothing
        let mut one = [0u8; 1];
        prop_assert_eq!(c.try_pop(&mut one), 1);
        prop_assert_eq!(one[0], 0);
        prop_assert_eq!(p.try_push(b"x"), 1); // one pop reopens one byte
        let mut drain = vec![0u8; capacity];
        prop_assert_eq!(c.try_pop(&mut drain), capacity);
        prop_assert_eq!(drain[capacity - 1], b'x');
    }

    /// Exactly-once, in-order delivery under a real reader/writer race:
    /// the producer thread pushes variable-length records (sizes from
    /// the proptest script, many larger than the ring), the consumer
    /// reads in differently-sized chunks, and the concatenation must be
    /// the identity.
    #[test]
    fn threaded_records_arrive_exactly_once_in_order(
        capacity in 1usize..24,
        record_sizes in proptest::collection::vec(1usize..80, 1..24),
        read_chunk in 1usize..64,
    ) {
        let ring = SpscRing::heap(capacity);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        let total: usize = record_sizes.iter().sum();
        let writer = std::thread::spawn(move || {
            let mut sent = 0u64;
            for n in record_sizes {
                let record: Vec<u8> =
                    (sent..sent + n as u64).map(|b| (b % 251) as u8).collect();
                p.push_all(&record, || false).unwrap();
                sent += n as u64;
            }
            p.close();
        });
        let mut got = Vec::with_capacity(total);
        let mut buf = vec![0u8; read_chunk];
        loop {
            let n = c.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        prop_assert_eq!(got.len(), total);
        prop_assert!(got.iter().enumerate().all(|(i, &b)| b == (i as u64 % 251) as u8));
    }

    /// The shm fabric's actual hot path: whole wire frames through a
    /// tiny ring, decoded by the unmodified TCP codec. Every frame must
    /// come back intact and in order, ending in clean EOF.
    #[test]
    fn wire_frames_survive_a_ring_smaller_than_one_record(
        payload_sizes in proptest::collection::vec(0usize..300, 1..12),
    ) {
        let ring = SpscRing::heap(32);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        let frames: Vec<Frame> = payload_sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| Frame::JobLine {
                job: i as u64,
                rank: (i % 7) as u64,
                line: "x".repeat(n),
            })
            .collect();
        let writer = std::thread::spawn({
            let frames = frames.clone();
            move || {
                for frame in &frames {
                    p.push_all(&encode_frame(frame), || false).unwrap();
                }
                p.close();
            }
        });
        for expected in &frames {
            let got = read_frame(&mut c).unwrap().expect("a frame before EOF");
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(read_frame(&mut c).unwrap().is_none(), "clean EOF after the last frame");
        writer.join().unwrap();
    }
}
