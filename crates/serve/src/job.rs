//! Job objects and their lifecycle state machine.
//!
//! A job moves through exactly one path of:
//!
//! ```text
//! Queued ──▶ Running ──▶ Completed
//!    │          │
//!    │          ├──▶ Failed        (a rank errored / a worker died,
//!    │          │                    no retry budget left)
//!    │          └──▶ Queued        (worker died, retry budget left:
//!    │                               fresh attempt, fresh epoch block)
//!    └──▶ Failed                   (daemon draining / workers gone)
//! ```
//!
//! The transitions are driven solely by the scheduler thread; everything
//! here is just thread-safe state that the HTTP handlers read (status,
//! output) while the scheduler writes.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What a client asked for in `POST /jobs`.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Catalog name of the patternlet to run.
    pub patternlet: String,
    /// World size: how many workers the job occupies.
    pub np: usize,
    /// The "directive toggle" flag (`--on` in the CLI runner).
    pub on: bool,
    /// Wire-chaos spec in `PMRUN_NET_CHAOS` value form; empty = off.
    pub chaos: String,
    /// How many times a worker-death failure may be retried.
    pub retries: u32,
    /// Capture an execution trace: workers run the patternlet under a
    /// tracer and ship per-rank Chrome exports back; the merged trace is
    /// served at `GET /jobs/:id/trace` and analyzed at
    /// `GET /jobs/:id/analysis`.
    pub trace: bool,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting for enough idle workers.
    Queued,
    /// Assigned; ranks are executing.
    Running,
    /// Every rank finished cleanly.
    Completed,
    /// Terminal failure, with the reason (which names the dead rank when
    /// a worker was killed mid-job).
    Failed(String),
}

impl JobPhase {
    /// The wire name used in JSON status documents.
    pub fn name(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Completed => "completed",
            JobPhase::Failed(_) => "failed",
        }
    }

    /// Has the job reached a terminal state?
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobPhase::Completed | JobPhase::Failed(_))
    }
}

/// The job's captured output: lines arrive from workers (in stream
/// order per rank, interleaved across ranks) and readers block for more
/// until the job closes the buffer.
#[derive(Default)]
pub struct OutputBuf {
    state: Mutex<OutputState>,
    cv: Condvar,
}

#[derive(Default)]
struct OutputState {
    lines: Vec<String>,
    /// Bumped every time the buffer is cleared for a retry, so streaming
    /// readers can tell "fewer lines than my cursor" apart from a race.
    generation: u64,
    closed: bool,
}

impl OutputBuf {
    /// Append one line (no trailing newline).
    pub fn push(&self, line: String) {
        let mut s = self.state.lock().expect("output lock");
        s.lines.push(line);
        self.cv.notify_all();
    }

    /// No more lines will ever arrive.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("output lock");
        s.closed = true;
        self.cv.notify_all();
    }

    /// Drop accumulated lines for a retry attempt and reopen the buffer.
    pub fn reset(&self) {
        let mut s = self.state.lock().expect("output lock");
        s.lines.clear();
        s.generation += 1;
        s.closed = false;
        self.cv.notify_all();
    }

    /// Every line so far.
    pub fn lines(&self) -> Vec<String> {
        self.state.lock().expect("output lock").lines.clone()
    }

    /// Number of lines so far.
    pub fn len(&self) -> usize {
        self.state.lock().expect("output lock").lines.len()
    }

    /// True when no line has arrived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Streaming read: block until there are lines past `cursor` (or the
    /// buffer closes), then return them plus the new cursor. `None` means
    /// the stream is over. A reset (retry) rewinds the cursor to zero so
    /// the reader restarts from the fresh attempt's output.
    pub fn wait_past(&self, cursor: (u64, usize)) -> Option<(Vec<String>, (u64, usize))> {
        let (gen, mut idx) = cursor;
        let mut s = self.state.lock().expect("output lock");
        loop {
            if s.generation != gen || idx > s.lines.len() {
                idx = 0;
            }
            if s.lines.len() > idx {
                let fresh = s.lines[idx..].to_vec();
                let next = (s.generation, s.lines.len());
                return Some((fresh, next));
            }
            if s.closed {
                return None;
            }
            // Timed wait so a reader on a job that is reset-while-empty
            // still observes the generation bump promptly.
            let (guard, _) = self
                .cv
                .wait_timeout(s, Duration::from_millis(500))
                .expect("output lock");
            s = guard;
        }
    }
}

/// One job: spec, phase, output. Shared between the scheduler (writer)
/// and HTTP handlers (readers) behind an `Arc`.
pub struct Job {
    /// Gateway-assigned id (1-based, dense).
    pub id: u64,
    /// The submitted spec.
    pub spec: JobSpec,
    phase: Mutex<JobPhase>,
    /// Captured output lines.
    pub output: OutputBuf,
    /// Per-rank Chrome-trace exports for a traced job, keyed by rank.
    traces: Mutex<HashMap<usize, String>>,
}

impl Job {
    /// A freshly submitted job.
    pub fn new(id: u64, spec: JobSpec) -> Self {
        Job {
            id,
            spec,
            phase: Mutex::new(JobPhase::Queued),
            output: OutputBuf::default(),
            traces: Mutex::new(HashMap::new()),
        }
    }

    /// Current phase (cloned).
    pub fn phase(&self) -> JobPhase {
        self.phase.lock().expect("phase lock").clone()
    }

    /// Move to a new phase. Closes the output on terminal transitions.
    pub fn set_phase(&self, phase: JobPhase) {
        let terminal = phase.is_terminal();
        *self.phase.lock().expect("phase lock") = phase;
        if terminal {
            self.output.close();
        }
    }

    /// Store one rank's Chrome-trace export (latest attempt wins).
    pub fn store_trace(&self, rank: usize, json: String) {
        self.traces.lock().expect("trace lock").insert(rank, json);
    }

    /// Drop captured traces for a retry attempt.
    pub fn reset_traces(&self) {
        self.traces.lock().expect("trace lock").clear();
    }

    /// The captured per-rank exports merged into one Chrome trace
    /// (rank-sorted). `None` when no rank has reported a trace.
    pub fn merged_trace(&self) -> Option<String> {
        let traces = self.traces.lock().expect("trace lock");
        if traces.is_empty() {
            return None;
        }
        let mut ranks: Vec<(&usize, &String)> = traces.iter().collect();
        ranks.sort_by_key(|(rank, _)| **rank);
        Some(patternlets_trace::chrome::merge_chrome_json(
            ranks.into_iter().map(|(rank, json)| (*rank, json.as_str())),
        ))
    }
}

/// The daemon's job registry: id allocation plus lookup for the HTTP
/// handlers.
#[derive(Default)]
pub struct JobTable {
    inner: Mutex<TableState>,
}

#[derive(Default)]
struct TableState {
    next_id: u64,
    jobs: HashMap<u64, std::sync::Arc<Job>>,
    order: Vec<u64>,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new job, allocating its id.
    pub fn create(&self, spec: JobSpec) -> std::sync::Arc<Job> {
        let mut t = self.inner.lock().expect("job table lock");
        t.next_id += 1;
        let id = t.next_id;
        let job = std::sync::Arc::new(Job::new(id, spec));
        t.jobs.insert(id, job.clone());
        t.order.push(id);
        job
    }

    /// Look a job up by id.
    pub fn get(&self, id: u64) -> Option<std::sync::Arc<Job>> {
        self.inner
            .lock()
            .expect("job table lock")
            .jobs
            .get(&id)
            .cloned()
    }

    /// Every job, in submission order.
    pub fn all(&self) -> Vec<std::sync::Arc<Job>> {
        let t = self.inner.lock().expect("job table lock");
        t.order
            .iter()
            .filter_map(|id| t.jobs.get(id).cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn phases_report_terminality() {
        assert!(!JobPhase::Queued.is_terminal());
        assert!(!JobPhase::Running.is_terminal());
        assert!(JobPhase::Completed.is_terminal());
        assert!(JobPhase::Failed("x".into()).is_terminal());
        assert_eq!(JobPhase::Failed("x".into()).name(), "failed");
    }

    #[test]
    fn output_streams_to_a_blocked_reader() {
        let buf = Arc::new(OutputBuf::default());
        let reader = {
            let buf = buf.clone();
            std::thread::spawn(move || {
                let mut cursor = (0, 0);
                let mut seen = Vec::new();
                while let Some((lines, next)) = buf.wait_past(cursor) {
                    seen.extend(lines);
                    cursor = next;
                }
                seen
            })
        };
        buf.push("a".into());
        buf.push("b".into());
        std::thread::sleep(Duration::from_millis(20));
        buf.push("c".into());
        buf.close();
        assert_eq!(reader.join().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn reset_rewinds_streaming_readers() {
        let buf = OutputBuf::default();
        buf.push("old".into());
        let (lines, cursor) = buf.wait_past((0, 0)).unwrap();
        assert_eq!(lines, vec!["old"]);
        buf.reset();
        buf.push("new".into());
        let (lines, _) = buf.wait_past(cursor).unwrap();
        assert_eq!(lines, vec!["new"], "cursor rewound across the reset");
    }

    #[test]
    fn table_allocates_dense_ids_in_order() {
        let table = JobTable::new();
        let spec = JobSpec {
            patternlet: "broadcast".into(),
            np: 2,
            on: false,
            chaos: String::new(),
            retries: 0,
            trace: false,
        };
        let a = table.create(spec.clone());
        let b = table.create(spec);
        assert_eq!((a.id, b.id), (1, 2));
        assert_eq!(table.all().len(), 2);
        assert!(table.get(1).is_some());
        assert!(table.get(99).is_none());
    }

    #[test]
    fn terminal_phase_closes_output() {
        let job = Job::new(
            1,
            JobSpec {
                patternlet: "x".into(),
                np: 1,
                on: false,
                chaos: String::new(),
                retries: 0,
                trace: false,
            },
        );
        job.output.push("hello".into());
        job.set_phase(JobPhase::Completed);
        // A reader starting after completion drains and ends.
        let (lines, cursor) = job.output.wait_past((0, 0)).unwrap();
        assert_eq!(lines, vec!["hello"]);
        assert!(job.output.wait_past(cursor).is_none());
    }
}
