//! Gateway client: what `patternlets submit` (and the benches) speak.
//!
//! Thin wrappers over the HTTP substrate returning `String` errors —
//! these surface directly on a CLI, so they are written for humans, not
//! for matching.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::http::http_exchange;
use crate::json::{escape, Json};

/// Environment variable the CLI consults for the gateway address when
/// `--addr` is not given.
pub const ENV_GATEWAY: &str = "PMSERVE_ADDR";

/// What to submit.
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// Patternlet catalog name.
    pub patternlet: String,
    /// World size.
    pub np: usize,
    /// Directive toggle.
    pub on: bool,
    /// Wire-chaos value (empty = daemon default).
    pub chaos: String,
    /// Worker-death retry budget (`None` = daemon default).
    pub retries: Option<u32>,
    /// Capture an execution trace (served at `GET /jobs/:id/trace` and
    /// analyzed at `GET /jobs/:id/analysis`).
    pub trace: bool,
}

impl SubmitSpec {
    /// The `POST /jobs` body.
    pub fn to_json(&self) -> String {
        let mut doc = format!(
            "{{\"patternlet\": \"{}\", \"np\": {}, \"on\": {}",
            escape(&self.patternlet),
            self.np,
            self.on
        );
        if !self.chaos.is_empty() {
            doc.push_str(&format!(", \"chaos\": \"{}\"", escape(&self.chaos)));
        }
        if let Some(r) = self.retries {
            doc.push_str(&format!(", \"retries\": {r}"));
        }
        if self.trace {
            doc.push_str(", \"trace\": true");
        }
        doc.push('}');
        doc
    }
}

/// A job's status document, decoded.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// `queued` / `running` / `completed` / `failed`.
    pub status: String,
    /// Failure reason, when failed.
    pub error: Option<String>,
    /// Output lines captured so far.
    pub lines: u64,
}

impl JobStatus {
    /// Terminal?
    pub fn is_terminal(&self) -> bool {
        self.status == "completed" || self.status == "failed"
    }
}

fn gateway_error(status: u16, body: &str) -> String {
    let detail = Json::parse(body)
        .and_then(|j| j.get("error").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_else(|| body.trim().to_string());
    format!("gateway answered {status}: {detail}")
}

/// Submit a job; returns its id.
pub fn submit(addr: &str, spec: &SubmitSpec) -> Result<u64, String> {
    let (status, body) = http_exchange(addr, "POST", "/jobs", Some(&spec.to_json()))
        .map_err(|e| format!("cannot reach pmserve at {addr}: {e}"))?;
    if status != 202 {
        return Err(gateway_error(status, &body));
    }
    Json::parse(&body)
        .and_then(|j| j.get("job").and_then(Json::as_u64))
        .ok_or_else(|| format!("malformed submit reply: {body}"))
}

/// One status poll.
pub fn status(addr: &str, job: u64) -> Result<JobStatus, String> {
    let (status, body) = http_exchange(addr, "GET", &format!("/jobs/{job}"), None)
        .map_err(|e| format!("cannot reach pmserve at {addr}: {e}"))?;
    if status != 200 {
        return Err(gateway_error(status, &body));
    }
    let doc = Json::parse(&body).ok_or_else(|| format!("malformed status reply: {body}"))?;
    Ok(JobStatus {
        status: doc
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        lines: doc.get("lines").and_then(Json::as_u64).unwrap_or(0),
    })
}

/// Poll until the job reaches a terminal phase.
pub fn wait(addr: &str, job: u64, poll: Duration) -> Result<JobStatus, String> {
    loop {
        let s = status(addr, job)?;
        if s.is_terminal() {
            return Ok(s);
        }
        std::thread::sleep(poll);
    }
}

/// Stream `GET /jobs/:id/output` into `out`, chunk by chunk, live until
/// the job ends. (This is the long-poll path; it blocks for the job's
/// duration.)
pub fn stream_output(addr: &str, job: u64, out: &mut impl Write) -> Result<(), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot reach pmserve at {addr}: {e}"))?;
    write!(
        stream,
        "GET /jobs/{job}/output HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("request write: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("response read: {e}"))?;
    let code: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("response read: {e}"))?;
        if n == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    if code != 200 {
        let mut body = String::new();
        let _ = reader.read_to_string(&mut body);
        return Err(gateway_error(code, &body));
    }
    loop {
        let mut size_line = String::new();
        let n = reader
            .read_line(&mut size_line)
            .map_err(|e| format!("stream read: {e}"))?;
        if n == 0 {
            return Ok(());
        }
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            return Ok(());
        }
        let mut chunk = vec![0u8; size];
        reader
            .read_exact(&mut chunk)
            .map_err(|e| format!("stream read: {e}"))?;
        out.write_all(&chunk)
            .map_err(|e| format!("output write: {e}"))?;
        out.flush().ok();
        let mut crlf = [0u8; 2];
        reader
            .read_exact(&mut crlf)
            .map_err(|e| format!("stream read: {e}"))?;
    }
}

/// Ask the daemon to drain and exit.
pub fn shutdown(addr: &str) -> Result<(), String> {
    let (status, body) = http_exchange(addr, "POST", "/shutdown", None)
        .map_err(|e| format!("cannot reach pmserve at {addr}: {e}"))?;
    if status == 200 {
        Ok(())
    } else {
        Err(gateway_error(status, &body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_spec_renders_minimal_and_full_bodies() {
        let minimal = SubmitSpec {
            patternlet: "broadcast".into(),
            np: 4,
            on: false,
            chaos: String::new(),
            retries: None,
            trace: false,
        };
        let j = Json::parse(&minimal.to_json()).unwrap();
        assert_eq!(j.get("np").unwrap().as_u64(), Some(4));
        assert!(j.get("chaos").is_none());
        assert!(j.get("retries").is_none());
        assert!(j.get("trace").is_none());

        let full = SubmitSpec {
            patternlet: "reduction".into(),
            np: 2,
            on: true,
            chaos: "drop=0.01,seed=7".into(),
            retries: Some(2),
            trace: true,
        };
        let j = Json::parse(&full.to_json()).unwrap();
        assert_eq!(j.get("on").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("chaos").unwrap().as_str(), Some("drop=0.01,seed=7"));
        assert_eq!(j.get("retries").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("trace").unwrap().as_bool(), Some(true));
    }
}
