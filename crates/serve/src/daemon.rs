//! The `pmserve` daemon: two listeners and a scheduler.
//!
//! ```text
//!                    ┌──────────────────────────────────────────┐
//!   curl / submit ──▶│ HTTP gateway (thread per connection)     │
//!                    │   POST /jobs   GET /jobs/:id[/output]    │
//!                    │   GET /metrics GET /workers POST /shutdown│
//!                    └───────┬──────────────────────────────────┘
//!                            │ Event::Submitted / Drain
//!                            ▼
//!                    ┌──────────────────┐   JobAssign    ┌─────────┐
//!                    │ scheduler thread │───────────────▶│ workers │
//!                    └──────────────────┘◀───────────────└─────────┘
//!                            ▲   RankDone / WorkerDead / lines
//!                            │
//!                    ┌───────┴──────────────────────────────────┐
//!   workers ────────▶│ cluster listener (first-frame dispatch): │
//!   rank worlds ────▶│   WorkerHello → pool + reader thread     │
//!                    │   Register    → RendezvousCore::admit    │
//!                    └──────────────────────────────────────────┘
//! ```
//!
//! The cluster port doubles as the job worlds' rendezvous server: the
//! same [`RendezvousCore`] that backs `pmrun` is embedded here, and
//! because each job attempt registers inside its own epoch block,
//! concurrent jobs share the core without interference.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::time::Duration;

use patternlets_metrics::{render_prometheus, FleetMetrics};
use patternlets_net::frame::{read_frame, Frame};
use patternlets_net::rendezvous::RendezvousCore;

use crate::http::{read_request, respond, respond_json, ChunkedWriter, Request};
use crate::job::{JobPhase, JobSpec, JobTable};
use crate::json::{escape, Json};
use crate::pool::WorkerPool;
use crate::scheduler::{run_scheduler, Event, GatewayStats, Scheduler};

/// Daemon construction parameters.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Cluster (worker + rendezvous) bind address. Port 0 = ephemeral.
    pub cluster_addr: String,
    /// HTTP gateway bind address. Port 0 = ephemeral.
    pub http_addr: String,
    /// Suppress the scheduler's narration.
    pub quiet: bool,
    /// Wire-chaos spec applied to jobs that don't carry their own
    /// (`PMRUN_NET_CHAOS` value form; empty = off).
    pub default_chaos: String,
    /// Retry budget for jobs that don't specify one.
    pub default_retries: u32,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            cluster_addr: "127.0.0.1:0".to_string(),
            http_addr: "127.0.0.1:0".to_string(),
            quiet: false,
            default_chaos: String::new(),
            default_retries: 0,
        }
    }
}

/// A started daemon. Dropping the handle does **not** stop the daemon;
/// call [`drain`](Daemon::drain) then [`wait`](Daemon::wait).
pub struct Daemon {
    /// Where workers connect (and job worlds rendezvous).
    pub cluster_addr: SocketAddr,
    /// Where the HTTP gateway listens.
    pub http_addr: SocketAddr,
    /// The job registry (exposed for in-process tests).
    pub table: Arc<JobTable>,
    /// The worker census.
    pub pool: Arc<WorkerPool>,
    /// Fleet-wide metrics.
    pub fleet: Arc<FleetMetrics>,
    /// Gateway counters.
    pub stats: Arc<GatewayStats>,
    draining: Arc<AtomicBool>,
    events: Sender<Event>,
    scheduler: std::thread::JoinHandle<()>,
}

impl Daemon {
    /// Begin graceful shutdown: stop admitting, fail the queue, drain
    /// running jobs. Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let _ = self.events.send(Event::Drain);
    }

    /// Has the scheduler finished draining?
    pub fn finished(&self) -> bool {
        self.scheduler.is_finished()
    }

    /// Block until the scheduler exits (after [`drain`](Self::drain)).
    pub fn wait(self) {
        let _ = self.scheduler.join();
    }
}

/// Bind both listeners, start the scheduler, and return the handle.
pub fn start(config: DaemonConfig) -> std::io::Result<Daemon> {
    let cluster = TcpListener::bind(&config.cluster_addr)?;
    let http = TcpListener::bind(&config.http_addr)?;
    let cluster_addr = cluster.local_addr()?;
    let http_addr = http.local_addr()?;

    let table = Arc::new(JobTable::new());
    let pool = Arc::new(WorkerPool::new());
    let fleet = Arc::new(FleetMetrics::new());
    let stats = Arc::new(GatewayStats::default());
    let core = Arc::new(RendezvousCore::new());
    let draining = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();

    let scheduler = {
        let sched = Scheduler::new(
            table.clone(),
            pool.clone(),
            fleet.clone(),
            stats.clone(),
            core.clone(),
            config.quiet,
        );
        std::thread::Builder::new()
            .name("pmserve-scheduler".into())
            .spawn(move || run_scheduler(sched, rx))?
    };

    {
        let (table, pool, fleet, core, tx) = (
            table.clone(),
            pool.clone(),
            fleet.clone(),
            core.clone(),
            tx.clone(),
        );
        std::thread::Builder::new()
            .name("pmserve-cluster".into())
            .spawn(move || {
                for conn in cluster.incoming() {
                    let Ok(conn) = conn else { continue };
                    let (table, pool, fleet, core, tx) = (
                        table.clone(),
                        pool.clone(),
                        fleet.clone(),
                        core.clone(),
                        tx.clone(),
                    );
                    let _ = std::thread::Builder::new()
                        .name("pmserve-conn".into())
                        .spawn(move || cluster_conn(conn, &table, &pool, &fleet, &core, &tx));
                }
            })?;
    }

    {
        let shared = HttpShared {
            table: table.clone(),
            pool: pool.clone(),
            fleet: fleet.clone(),
            stats: stats.clone(),
            draining: draining.clone(),
            events: tx.clone(),
            default_chaos: config.default_chaos.clone(),
            default_retries: config.default_retries,
        };
        std::thread::Builder::new()
            .name("pmserve-http".into())
            .spawn(move || {
                for conn in http.incoming() {
                    let Ok(conn) = conn else { continue };
                    let shared = shared.clone();
                    let _ = std::thread::Builder::new()
                        .name("pmserve-http-conn".into())
                        .spawn(move || handle_http(conn, &shared));
                }
            })?;
    }

    Ok(Daemon {
        cluster_addr,
        http_addr,
        table,
        pool,
        fleet,
        stats,
        draining,
        events: tx,
        scheduler,
    })
}

/// First-frame dispatch on a cluster connection, then (for workers) the
/// connection's read loop for the worker's whole life.
fn cluster_conn(
    mut conn: TcpStream,
    table: &JobTable,
    pool: &WorkerPool,
    fleet: &FleetMetrics,
    core: &RendezvousCore,
    tx: &Sender<Event>,
) {
    // Whoever connects speaks first, promptly; a silent peer is dropped.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    match read_frame(&mut conn) {
        Ok(Some(Frame::Register {
            epoch,
            rank,
            np,
            addr,
        })) => {
            // A job world registering: the connection parks inside the
            // core until its epoch completes.
            core.admit(epoch, rank as usize, np as usize, addr, conn);
        }
        Ok(Some(Frame::WorkerHello { pid, host })) => {
            // A worker joining the pool: this thread becomes its reader.
            let _ = conn.set_read_timeout(None);
            conn.set_nodelay(true).ok();
            let Ok(write_half) = conn.try_clone() else {
                return;
            };
            let id = pool.join(pid, host, write_half);
            let _ = tx.send(Event::WorkerJoined(id));
            loop {
                match read_frame(&mut conn) {
                    Ok(Some(Frame::JobLine { job, rank: _, line })) => {
                        if let Some(job) = table.get(job) {
                            job.output.push(line);
                        }
                    }
                    Ok(Some(Frame::JobMetrics {
                        job,
                        rank: _,
                        payload,
                    })) => {
                        if let Ok(snapshot) = patternlets_metrics::wire::decode(&payload) {
                            fleet.record(job, &snapshot);
                        }
                    }
                    Ok(Some(Frame::JobDone {
                        job,
                        rank,
                        ok,
                        error,
                    })) => {
                        let _ = tx.send(Event::RankDone {
                            worker: id,
                            job,
                            rank,
                            ok,
                            error,
                        });
                    }
                    Ok(Some(Frame::JobTrace { job, rank, json })) => {
                        if let Some(job) = table.get(job) {
                            job.store_trace(rank as usize, json);
                        }
                    }
                    Ok(Some(_)) => {}
                    // EOF or a mangled stream: the worker is gone.
                    Ok(None) | Err(_) => {
                        let _ = tx.send(Event::WorkerDead(id));
                        return;
                    }
                }
            }
        }
        _ => {}
    }
}

#[derive(Clone)]
struct HttpShared {
    table: Arc<JobTable>,
    pool: Arc<WorkerPool>,
    fleet: Arc<FleetMetrics>,
    stats: Arc<GatewayStats>,
    draining: Arc<AtomicBool>,
    events: Sender<Event>,
    default_chaos: String,
    default_retries: u32,
}

fn err_doc(msg: &str) -> String {
    format!("{{\"error\": \"{}\"}}", escape(msg))
}

fn handle_http(mut conn: TcpStream, shared: &HttpShared) {
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let Ok(Some(req)) = read_request(&mut conn) else {
        return;
    };
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit(&mut conn, &req, shared),
        ("GET", ["jobs"]) => list_jobs(&mut conn, shared),
        ("GET", ["jobs", id]) => job_status(&mut conn, id, shared),
        ("GET", ["jobs", id, "output"]) => job_output(&mut conn, id, shared),
        ("GET", ["jobs", id, "trace"]) => job_trace(&mut conn, id, shared),
        ("GET", ["jobs", id, "analysis"]) => job_analysis(&mut conn, id, shared),
        ("GET", ["metrics"]) => metrics(&mut conn, shared),
        ("GET", ["workers"]) => workers(&mut conn, shared),
        ("POST", ["shutdown"]) => {
            shared.draining.store(true, Ordering::SeqCst);
            let _ = shared.events.send(Event::Drain);
            respond_json(&mut conn, 200, "{\"status\": \"draining\"}")
        }
        ("GET", []) => respond(
            &mut conn,
            200,
            "text/plain",
            b"pmserve: POST /jobs, GET /jobs, GET /jobs/:id, GET /jobs/:id/output, \
              GET /jobs/:id/trace, GET /jobs/:id/analysis, \
              GET /metrics, GET /workers, POST /shutdown\n",
        ),
        (method, _) if method != "GET" && method != "POST" => {
            respond_json(&mut conn, 405, &err_doc("use GET or POST"))
        }
        _ => respond_json(&mut conn, 404, &err_doc("no such endpoint")),
    };
    let _ = result;
}

fn submit(conn: &mut TcpStream, req: &Request, shared: &HttpShared) -> std::io::Result<()> {
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return respond_json(conn, 503, &err_doc("daemon is draining"));
    }
    let Some(body) = Json::parse(req.body_str()) else {
        return respond_json(conn, 400, &err_doc("body must be a JSON object"));
    };
    let Some(patternlet) = body.get("patternlet").and_then(Json::as_str) else {
        return respond_json(conn, 400, &err_doc("missing \"patternlet\" (string)"));
    };
    let Some(np) = body.get("np").and_then(Json::as_u64).filter(|&n| n >= 1) else {
        return respond_json(conn, 400, &err_doc("missing \"np\" (integer >= 1)"));
    };
    let on = body.get("on").and_then(Json::as_bool).unwrap_or(false);
    let chaos = body
        .get("chaos")
        .and_then(Json::as_str)
        .unwrap_or(&shared.default_chaos)
        .to_string();
    let retries = body
        .get("retries")
        .and_then(Json::as_u64)
        .map(|r| r.min(8) as u32)
        .unwrap_or(shared.default_retries);
    let trace = body.get("trace").and_then(Json::as_bool).unwrap_or(false);
    let live = shared.pool.live();
    if np as usize > live {
        // Admission control: a job that cannot run on today's membership
        // is refused synchronously rather than parked forever.
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return respond_json(
            conn,
            503,
            &err_doc(&format!("job needs {np} workers, only {live} alive")),
        );
    }
    let job = shared.table.create(JobSpec {
        patternlet: patternlet.to_string(),
        np: np as usize,
        on,
        chaos,
        retries,
        trace,
    });
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    let _ = shared.events.send(Event::Submitted(job.id));
    respond_json(
        conn,
        202,
        &format!("{{\"job\": {}, \"status\": \"queued\"}}", job.id),
    )
}

fn job_doc(job: &crate::job::Job, shared: &HttpShared) -> String {
    let phase = job.phase();
    let error = match &phase {
        JobPhase::Failed(e) => format!(", \"error\": \"{}\"", escape(e)),
        _ => String::new(),
    };
    let metrics = shared
        .fleet
        .job(job.id)
        .map(|snap| {
            format!(
                ", \"msgs_sent\": {}, \"msgs_recv\": {}",
                snap.msgs_sent(),
                snap.total(patternlets_metrics::CounterId::MsgsRecv)
            )
        })
        .unwrap_or_default();
    format!(
        "{{\"job\": {}, \"patternlet\": \"{}\", \"np\": {}, \"status\": \"{}\", \"lines\": {}{error}{metrics}}}",
        job.id,
        escape(&job.spec.patternlet),
        job.spec.np,
        phase.name(),
        job.output.len(),
    )
}

fn job_status(conn: &mut TcpStream, id: &str, shared: &HttpShared) -> std::io::Result<()> {
    let job = id.parse::<u64>().ok().and_then(|id| shared.table.get(id));
    match job {
        Some(job) => respond_json(conn, 200, &job_doc(&job, shared)),
        None => respond_json(conn, 404, &err_doc("no such job")),
    }
}

fn list_jobs(conn: &mut TcpStream, shared: &HttpShared) -> std::io::Result<()> {
    let docs: Vec<String> = shared
        .table
        .all()
        .iter()
        .map(|j| job_doc(j, shared))
        .collect();
    respond_json(conn, 200, &format!("{{\"jobs\": [{}]}}", docs.join(", ")))
}

/// Stream a job's output as chunked text, one chunk per burst of lines,
/// live until the job reaches a terminal phase.
fn job_output(conn: &mut TcpStream, id: &str, shared: &HttpShared) -> std::io::Result<()> {
    let Some(job) = id.parse::<u64>().ok().and_then(|id| shared.table.get(id)) else {
        return respond_json(conn, 404, &err_doc("no such job"));
    };
    // Streaming can outlive the request-read timeout; writes govern now.
    let _ = conn.set_read_timeout(None);
    let mut writer = ChunkedWriter::start(conn, 200, "text/plain; charset=utf-8")?;
    let mut cursor = (0, 0);
    while let Some((lines, next)) = job.output.wait_past(cursor) {
        cursor = next;
        let mut burst = String::new();
        for line in &lines {
            burst.push_str(line);
            burst.push('\n');
        }
        writer.chunk(burst.as_bytes())?;
    }
    writer.finish()
}

/// Serve a traced job's merged Chrome trace (all ranks, timelines
/// aligned) — load it straight into Perfetto / `chrome://tracing`.
fn job_trace(conn: &mut TcpStream, id: &str, shared: &HttpShared) -> std::io::Result<()> {
    let Some(job) = id.parse::<u64>().ok().and_then(|id| shared.table.get(id)) else {
        return respond_json(conn, 404, &err_doc("no such job"));
    };
    if !job.spec.trace {
        return respond_json(conn, 404, &err_doc("job was not submitted with \"trace\": true"));
    }
    match job.merged_trace() {
        Some(json) => respond_json(conn, 200, &json),
        None => respond_json(conn, 404, &err_doc("no trace captured yet")),
    }
}

/// Run the critical-path analyzer over a traced job's merged trace and
/// serve the JSON report.
fn job_analysis(conn: &mut TcpStream, id: &str, shared: &HttpShared) -> std::io::Result<()> {
    let Some(job) = id.parse::<u64>().ok().and_then(|id| shared.table.get(id)) else {
        return respond_json(conn, 404, &err_doc("no such job"));
    };
    if !job.spec.trace {
        return respond_json(conn, 404, &err_doc("job was not submitted with \"trace\": true"));
    }
    let Some(json) = job.merged_trace() else {
        return respond_json(conn, 404, &err_doc("no trace captured yet"));
    };
    match patternlets_trace::analyze::from_chrome_json(&json) {
        Ok(analysis) => respond_json(conn, 200, &analysis.to_json()),
        Err(e) => respond_json(conn, 500, &err_doc(&format!("analysis failed: {e}"))),
    }
}

fn metrics(conn: &mut TcpStream, shared: &HttpShared) -> std::io::Result<()> {
    let fleet = shared.fleet.fleet();
    let mut page = render_prometheus(&fleet);
    let (mut queued, mut running) = (0usize, 0usize);
    for job in shared.table.all() {
        match job.phase() {
            JobPhase::Queued => queued += 1,
            JobPhase::Running => running += 1,
            _ => {}
        }
    }
    let s = &shared.stats;
    page.push_str(&format!(
        "# TYPE pmserve_workers_live gauge\npmserve_workers_live {}\n\
         # TYPE pmserve_jobs_queued gauge\npmserve_jobs_queued {queued}\n\
         # TYPE pmserve_jobs_running gauge\npmserve_jobs_running {running}\n\
         # TYPE pmserve_jobs_submitted_total counter\npmserve_jobs_submitted_total {}\n\
         # TYPE pmserve_jobs_completed_total counter\npmserve_jobs_completed_total {}\n\
         # TYPE pmserve_jobs_failed_total counter\npmserve_jobs_failed_total {}\n\
         # TYPE pmserve_jobs_retried_total counter\npmserve_jobs_retried_total {}\n\
         # TYPE pmserve_jobs_rejected_total counter\npmserve_jobs_rejected_total {}\n",
        shared.pool.live(),
        s.submitted.load(Ordering::Relaxed),
        s.completed.load(Ordering::Relaxed),
        s.failed.load(Ordering::Relaxed),
        s.retried.load(Ordering::Relaxed),
        s.rejected.load(Ordering::Relaxed),
    ));
    respond(conn, 200, "text/plain; version=0.0.4", page.as_bytes())
}

fn workers(conn: &mut TcpStream, shared: &HttpShared) -> std::io::Result<()> {
    let rows: Vec<String> = shared
        .pool
        .view()
        .iter()
        .map(|w| match w.busy_on {
            Some(job) => format!(
                "{{\"id\": {}, \"pid\": {}, \"host\": \"{}\", \"state\": \"busy\", \"job\": {job}}}",
                w.id,
                w.pid,
                escape(&w.host)
            ),
            None => format!(
                "{{\"id\": {}, \"pid\": {}, \"host\": \"{}\", \"state\": \"idle\"}}",
                w.id,
                w.pid,
                escape(&w.host)
            ),
        })
        .collect();
    respond_json(
        conn,
        200,
        &format!(
            "{{\"live\": {}, \"workers\": [{}]}}",
            shared.pool.live(),
            rows.join(", ")
        ),
    )
}
