//! A deliberately tiny JSON reader/writer for the gateway.
//!
//! The job API exchanges small, flat documents; pulling in a real JSON
//! crate is not an option in this workspace (vendored deps only), so this
//! module implements just enough of RFC 8259 for the gateway: parsing of
//! arbitrary nested values (objects, arrays, strings with escapes,
//! integers/floats, booleans, null) and escaping for the writer side.
//! Writers build documents with `format!` + [`escape`] — the documents
//! are flat enough that a serializer would be ceremony.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers survive exactly up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(v)
    }

    /// Object member lookup (`None` for non-objects / absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos).map(Json::Str),
        b't' => parse_lit(b, pos, b"true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, b"false", Json::Bool(false)),
        b'n' => parse_lit(b, pos, b"null", Json::Null),
        _ => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8], v: Json) -> Option<Json> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Some(v)
    } else {
        None
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Option<Json> {
    eat(b, pos, b'{')?;
    let mut m = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(m));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        eat(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        m.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(m));
            }
            _ => return None,
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Option<Json> {
    eat(b, pos, b'[')?;
    let mut v = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(v));
    }
    loop {
        v.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(v));
            }
            _ => return None,
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogate pairs are out of scope for the job
                        // API's ASCII-leaning payloads; lone surrogates
                        // become the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched).
                let s = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = s.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Json::Num)
}

/// Escape a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_submit_body() {
        let j = Json::parse(r#"{"patternlet": "broadcast", "np": 4, "on": true}"#).unwrap();
        assert_eq!(j.get("patternlet").unwrap().as_str(), Some("broadcast"));
        assert_eq!(j.get("np").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("on").unwrap().as_bool(), Some(true));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let original = "line\nwith \"quotes\" and \\slashes\\ and \ttabs";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let j = Json::parse(&doc).unwrap();
        assert_eq!(j.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(Json::parse("{\"a\": 1} x").is_none());
        assert!(Json::parse("{\"a\": ").is_none());
        assert!(Json::parse("[1, 2").is_none());
    }

    #[test]
    fn nested_documents_parse() {
        let j = Json::parse(r#"{"jobs": [{"id": 1}, {"id": 2}], "n": 2}"#).unwrap();
        let Json::Arr(jobs) = j.get("jobs").unwrap() else {
            panic!()
        };
        assert_eq!(jobs[1].get("id").unwrap().as_u64(), Some(2));
    }
}
