//! The worker side of the cluster protocol.
//!
//! [`run_worker`] is one long-lived loop: connect to the daemon's
//! cluster port, announce with [`Frame::WorkerHello`], then serve
//! [`Frame::JobAssign`]s until the daemon says [`Frame::Shutdown`] (or
//! disappears). Each assignment runs under
//! [`with_job_ctx`](patternlets_net::with_job_ctx), so every world the
//! patternlet builds goes over TCP as the assigned rank of the job's
//! private epoch block — the worker itself never restarts between jobs,
//! which is the whole point of the elastic pool.
//!
//! What "run the patternlet" means is the caller's business: the
//! `patternlets worker` CLI passes a registry-backed [`JobRunner`], the
//! in-process tests pass closures. The loop owns the protocol (context
//! install, panic containment, line streaming, metrics push, the final
//! [`Frame::JobDone`] verdict); the runner owns the patternlet.

use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use patternlets_metrics::{wire, MetricsSnapshot};
use patternlets_net::chaos::NetChaosPlan;
use patternlets_net::frame::{read_frame, write_frame, Frame};
use patternlets_net::{install_job_fabric, with_job_ctx, JobCtx};

/// One job assignment, as handed to a [`JobRunner`].
#[derive(Debug, Clone)]
pub struct Assignment {
    /// Gateway job id.
    pub job: u64,
    /// Catalog name of the patternlet.
    pub patternlet: String,
    /// World size.
    pub np: usize,
    /// This worker's rank in the job.
    pub rank: usize,
    /// The directive toggle (`--on`).
    pub on: bool,
    /// Capture an execution trace: the runner runs the patternlet under
    /// a tracer and ships the Chrome export back via
    /// [`JobLineSink::trace`] before returning.
    pub trace: bool,
}

/// Executes one assigned patternlet. Runs inside the job's fabric
/// context: any world built in `run` is rank `assign.rank` of an
/// `assign.np`-wide TCP world. Return the run's metrics snapshot (an
/// empty snapshot is fine) or a human-readable error.
pub trait JobRunner: Send + Sync + 'static {
    /// Execute the patternlet, emitting output through `lines`.
    fn run(&self, assign: &Assignment, lines: &JobLineSink) -> Result<MetricsSnapshot, String>;
}

impl<F> JobRunner for F
where
    F: Fn(&Assignment, &JobLineSink) -> Result<MetricsSnapshot, String> + Send + Sync + 'static,
{
    fn run(&self, assign: &Assignment, lines: &JobLineSink) -> Result<MetricsSnapshot, String> {
        self(assign, lines)
    }
}

/// A handle for streaming one job's output lines back to the daemon.
/// Clone-cheap; writes are frame-atomic (one [`Frame::JobLine`] per
/// line), so lines from concurrent rank threads never interleave
/// mid-line.
#[derive(Clone)]
pub struct JobLineSink {
    conn: Arc<Mutex<TcpStream>>,
    job: u64,
    rank: u64,
}

impl JobLineSink {
    /// Send one output line (pass it without a trailing newline).
    /// Send failures are swallowed: if the daemon is gone the job is
    /// already lost, and the run loop will notice on its next read.
    pub fn line(&self, text: &str) {
        let mut conn = self.conn.lock().expect("worker conn lock");
        let _ = write_frame(
            &mut *conn,
            &Frame::JobLine {
                job: self.job,
                rank: self.rank,
                line: text.to_string(),
            },
        );
    }

    /// Ship this rank's Chrome-trace export back to the daemon (one
    /// [`Frame::JobTrace`]; the daemon merges all ranks' exports and
    /// serves the result at `GET /jobs/:id/trace`). Send failures are
    /// swallowed like line sends: a gone daemon already lost the job.
    pub fn trace(&self, json: &str) {
        let mut conn = self.conn.lock().expect("worker conn lock");
        let _ = write_frame(
            &mut *conn,
            &Frame::JobTrace {
                job: self.job,
                rank: self.rank,
                json: json.to_string(),
            },
        );
    }

    /// An `io::Write` adapter that splits a byte stream on `\n` and
    /// forwards each complete line — the shape
    /// [`Output::echoing_to`](patternlets_core::Output::echoing_to)
    /// wants for its echo writer.
    pub fn into_line_writer(self) -> LineWriter {
        LineWriter {
            sink: self,
            buf: Vec::new(),
        }
    }
}

/// See [`JobLineSink::into_line_writer`].
pub struct LineWriter {
    sink: JobLineSink,
    buf: Vec<u8>,
}

impl std::io::Write for LineWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        for &b in data {
            if b == b'\n' {
                let line = String::from_utf8_lossy(&self.buf).into_owned();
                self.sink.line(&line);
                self.buf.clear();
            } else {
                self.buf.push(b);
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "patternlet panicked".to_string()
    }
}

/// Join the cluster at `cluster_addr` and serve job assignments until
/// shutdown (`Ok`) or a protocol/transport failure (`Err`). Blocks for
/// the worker's lifetime — callers wanting a background worker spawn a
/// thread around this.
pub fn run_worker(cluster_addr: &str, runner: impl JobRunner) -> std::io::Result<()> {
    let conn = TcpStream::connect(cluster_addr)?;
    conn.set_nodelay(true).ok();
    let mut reader = conn.try_clone()?;
    let conn = Arc::new(Mutex::new(conn));
    write_frame(
        &mut *conn.lock().expect("worker conn lock"),
        &Frame::WorkerHello {
            pid: std::process::id() as u64,
            host: patternlets_net::shm::hostname(),
        },
    )?;
    install_job_fabric();
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            // EOF: the daemon went away; nothing left to serve.
            Ok(None) => return Ok(()),
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("worker control stream: {e}"),
                ))
            }
        };
        match frame {
            Frame::JobAssign {
                job,
                patternlet,
                np,
                rank,
                epoch_base,
                on,
                chaos,
                trace,
            } => {
                let assign = Assignment {
                    job,
                    patternlet,
                    np: np as usize,
                    rank: rank as usize,
                    on,
                    trace,
                };
                let sink = JobLineSink {
                    conn: conn.clone(),
                    job,
                    rank,
                };
                let chaos = if chaos.is_empty() {
                    None
                } else {
                    NetChaosPlan::from_env_value(&chaos)
                };
                let ctx = JobCtx::new(
                    assign.rank,
                    assign.np,
                    cluster_addr.to_string(),
                    epoch_base,
                    chaos,
                );
                // Contain panics: a crashing patternlet fails its job,
                // not the worker. (A SIGKILL'd worker is the daemon's
                // problem; a panicking patternlet is ours.)
                let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    with_job_ctx(ctx, || runner.run(&assign, &sink))
                }));
                let (ok, error) = match verdict {
                    Ok(Ok(snapshot)) => {
                        let mut c = conn.lock().expect("worker conn lock");
                        let _ = write_frame(
                            &mut *c,
                            &Frame::JobMetrics {
                                job,
                                rank,
                                payload: wire::encode(&snapshot),
                            },
                        );
                        (true, String::new())
                    }
                    Ok(Err(e)) => (false, e),
                    Err(payload) => (false, panic_text(payload)),
                };
                write_frame(
                    &mut *conn.lock().expect("worker conn lock"),
                    &Frame::JobDone {
                        job,
                        rank,
                        ok,
                        error,
                    },
                )?;
            }
            Frame::Shutdown => return Ok(()),
            // Anything else on the control stream is noise.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn line_writer_splits_on_newlines() {
        // A sink needs a real socket; use a loopback pair and read the
        // frames back.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        let sink = JobLineSink {
            conn: Arc::new(Mutex::new(client)),
            job: 9,
            rank: 1,
        };
        let mut w = sink.into_line_writer();
        w.write_all(b"hel").unwrap();
        w.write_all(b"lo\nworld\npartial").unwrap();
        drop(w);
        for expect in ["hello", "world"] {
            let Some(Frame::JobLine { job, rank, line }) = read_frame(&mut server).unwrap() else {
                panic!("expected a JobLine frame");
            };
            assert_eq!((job, rank), (9, 1));
            assert_eq!(line, expect);
        }
    }
}
