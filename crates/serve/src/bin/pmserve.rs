//! `pmserve` — the patternlets cluster daemon.
//!
//! ```text
//! pmserve [--workers N] [--cluster-port P] [--http-port P]
//!         [--net-chaos SPEC] [--retries N] [--worker-cmd PATH] [--quiet]
//! ```
//!
//! Binds the cluster and HTTP gateway ports (ephemeral by default,
//! printed on startup), spawns `--workers` local `patternlets worker`
//! processes, respawns any that die, and serves jobs until SIGINT /
//! SIGTERM — which drains in-flight jobs, prints a final metrics
//! summary, and exits 0. A second signal exits immediately.
//!
//! External workers may also join (`patternlets worker <cluster-addr>`
//! from anywhere that can reach the port): the pool is membership, not
//! configuration.

use std::io::Write;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use patternlets_core::signals;
use patternlets_serve::daemon::{self, DaemonConfig};

struct Options {
    workers: usize,
    cluster_port: u16,
    http_port: u16,
    chaos: String,
    retries: u32,
    worker_cmd: Option<String>,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: pmserve [--workers N] [--cluster-port P] [--http-port P]\n\
         \x20              [--net-chaos SPEC] [--retries N] [--worker-cmd PATH] [--quiet]\n\
         \n\
         Starts the patternlets cluster daemon: an elastic worker pool plus an\n\
         HTTP job gateway. Ports default to ephemeral (0) and are printed on\n\
         startup. SIGINT/SIGTERM drains in-flight jobs and exits 0."
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        workers: 4,
        cluster_port: 0,
        http_port: 0,
        chaos: String::new(),
        retries: 0,
        worker_cmd: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("pmserve: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--workers" => opts.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--cluster-port" => {
                opts.cluster_port = value("--cluster-port").parse().unwrap_or_else(|_| usage())
            }
            "--http-port" => {
                opts.http_port = value("--http-port").parse().unwrap_or_else(|_| usage())
            }
            "--net-chaos" => opts.chaos = value("--net-chaos"),
            "--retries" => opts.retries = value("--retries").parse().unwrap_or_else(|_| usage()),
            "--worker-cmd" => opts.worker_cmd = Some(value("--worker-cmd")),
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("pmserve: unknown argument {other:?}");
                usage();
            }
        }
    }
    opts
}

/// The `patternlets` CLI next to our own executable — the same layout
/// cargo gives every workspace build.
fn default_worker_cmd() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            let sibling = exe.with_file_name("patternlets");
            sibling.exists().then(|| sibling.display().to_string())
        })
        .unwrap_or_else(|| "patternlets".to_string())
}

fn spawn_worker(cmd: &str, cluster: &str, quiet: bool) -> Option<Child> {
    match Command::new(cmd)
        .arg("worker")
        .arg(cluster)
        .stdin(Stdio::null())
        .spawn()
    {
        Ok(child) => {
            if !quiet {
                println!("pmserve: spawned worker pid {}", child.id());
            }
            Some(child)
        }
        Err(e) => {
            eprintln!("pmserve: cannot spawn worker ({cmd}): {e}");
            None
        }
    }
}

fn main() {
    let opts = parse_args();
    signals::install_termination_handler();
    let config = DaemonConfig {
        cluster_addr: format!("127.0.0.1:{}", opts.cluster_port),
        http_addr: format!("127.0.0.1:{}", opts.http_port),
        quiet: opts.quiet,
        default_chaos: opts.chaos.clone(),
        default_retries: opts.retries,
    };
    let daemon = match daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pmserve: cannot start: {e}");
            std::process::exit(1);
        }
    };
    let cluster = daemon.cluster_addr.to_string();
    println!("pmserve: cluster on {cluster}");
    println!("pmserve: gateway on http://{}", daemon.http_addr);
    std::io::stdout().flush().ok();

    let worker_cmd = opts.worker_cmd.clone().unwrap_or_else(default_worker_cmd);
    let mut children: Vec<Child> = Vec::new();
    for _ in 0..opts.workers {
        children.extend(spawn_worker(&worker_cmd, &cluster, opts.quiet));
    }

    // Supervision loop: reap + respawn dead local workers, watch for the
    // drain signal, and wait for the scheduler to finish.
    let mut drain_sent = false;
    loop {
        if signals::termination_count() > 1 {
            eprintln!("pmserve: second signal; exiting immediately");
            for child in &mut children {
                let _ = child.kill();
            }
            std::process::exit(130);
        }
        if signals::termination_requested() && !drain_sent {
            daemon.drain();
            drain_sent = true;
        }
        // Reap exited workers; respawn (only while not draining — a
        // shrinking pool is the desired end state afterwards).
        let mut alive = Vec::with_capacity(children.len());
        for mut child in children {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if !opts.quiet {
                        println!("pmserve: worker pid {} exited ({status})", child.id());
                    }
                    if !drain_sent {
                        alive.extend(spawn_worker(&worker_cmd, &cluster, opts.quiet));
                    }
                }
                _ => alive.push(child),
            }
        }
        children = alive;
        if daemon.finished() {
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    daemon.wait();

    // The scheduler broadcast Shutdown to every worker on its way out;
    // give local ones a moment to exit before sweeping up.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    for child in &mut children {
        loop {
            match child.try_wait() {
                Ok(Some(_)) => break,
                _ if std::time::Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}
