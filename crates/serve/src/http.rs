//! A hand-rolled HTTP/1.1 server/client substrate for the job gateway.
//!
//! `pmserve` speaks just enough HTTP for `curl` and the `patternlets
//! submit` client: request-line + headers + `Content-Length` bodies on
//! the way in; fixed-length or `chunked` responses on the way out. Every
//! exchange is one connection (`Connection: close`), which keeps the
//! server loop a plain thread-per-connection accept loop with no keep-
//! alive bookkeeping — the right trade for a teaching daemon whose
//! request rate is human-scale.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on header block + body size: the gateway's documents are tiny, so
/// anything larger is a confused (or hostile) client.
const MAX_HEAD: usize = 16 * 1024;
const MAX_BODY: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The path, query string included.
    pub path: String,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 (empty string when absent or invalid).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }
}

/// Read one request from a connection. `Ok(None)` means the client went
/// away or sent something unparseable — the caller just drops the
/// connection either way.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let (method, path) = (method.to_string(), path.to_string());
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None);
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD {
            return Ok(None);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_BODY {
        return Ok(None);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete fixed-length response and flush it.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// [`respond`] with `application/json`.
pub fn respond_json(stream: &mut TcpStream, status: u16, json: &str) -> std::io::Result<()> {
    respond(stream, status, "application/json", json.as_bytes())
}

/// A `Transfer-Encoding: chunked` response in progress: the gateway's
/// output-streaming endpoint sends each captured line as its own chunk,
/// so a `curl` watching a running job sees lines as the workers print
/// them.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Send the response head and switch the connection to chunked mode.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            status_text(status),
            content_type,
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Send one chunk (empty input is skipped: a zero-size chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// Client side: issue one request and read the full response (fixed-
/// length or chunked), returning `(status, body)`.
pub fn http_exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Read a full response from a connected stream: status line, headers,
/// then a fixed-length, chunked, or read-to-EOF body.
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok((status, String::new()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break;
            }
            let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(n) = content_length {
        body.resize(n, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_response_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap().unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/jobs");
            assert_eq!(req.body_str(), "{\"np\": 2}");
            respond_json(&mut conn, 202, "{\"job\": 1}").unwrap();
        });
        let (status, body) = http_exchange(&addr, "POST", "/jobs", Some("{\"np\": 2}")).unwrap();
        assert_eq!(status, 202);
        assert_eq!(body, "{\"job\": 1}");
        server.join().unwrap();
    }

    #[test]
    fn chunked_stream_reassembles() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let _ = read_request(&mut conn).unwrap().unwrap();
            let mut w = ChunkedWriter::start(&mut conn, 200, "text/plain").unwrap();
            for part in ["one\n", "two\n", "three\n"] {
                w.chunk(part.as_bytes()).unwrap();
            }
            w.finish().unwrap();
        });
        let (status, body) = http_exchange(&addr, "GET", "/jobs/1/output", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "one\ntwo\nthree\n");
        server.join().unwrap();
    }
}
