//! The elastic worker pool.
//!
//! Workers are *membership*, not configuration: a worker process (or a
//! worker thread, in tests) connects to the daemon's cluster port, sends
//! [`Frame::WorkerHello`], and is a schedulable unit until its control
//! connection drops. Workers may join and leave between jobs; the
//! scheduler only sees the pool's current census. This is the same
//! epoch-re-admission philosophy the fault layer applies to ranks,
//! lifted to processes: identity is "whoever is connected right now".

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use patternlets_net::frame::{write_frame, Frame};

/// A worker's pool-assigned id (monotonic; never reused, so log lines
/// stay unambiguous across joins and leaves).
pub type WorkerId = u64;

struct WorkerEntry {
    pid: u64,
    /// The host the worker reported in its hello — surfaced in
    /// `GET /workers` so operators can see the pool's physical spread,
    /// and the input a placement-aware scheduler would group by.
    host: String,
    /// Write side of the control connection (reads happen on the
    /// daemon's dedicated reader thread for this worker).
    conn: Arc<Mutex<TcpStream>>,
    /// The job currently occupying this worker, if any.
    busy_on: Option<u64>,
}

/// Thread-safe worker census. All mutation goes through the scheduler
/// and the connection-reader threads; HTTP handlers only read.
#[derive(Default)]
pub struct WorkerPool {
    inner: Mutex<PoolState>,
}

#[derive(Default)]
struct PoolState {
    next_id: WorkerId,
    workers: BTreeMap<WorkerId, WorkerEntry>,
}

/// A snapshot row for `GET /workers`.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// Pool id.
    pub id: WorkerId,
    /// The worker process's pid (0 for thread workers).
    pub pid: u64,
    /// The host it reported in its hello.
    pub host: String,
    /// The job it is running, if busy.
    pub busy_on: Option<u64>,
}

impl WorkerPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admit a worker whose hello arrived on `conn`; returns its id.
    pub fn join(&self, pid: u64, host: String, conn: TcpStream) -> WorkerId {
        let mut p = self.inner.lock().expect("pool lock");
        p.next_id += 1;
        let id = p.next_id;
        p.workers.insert(
            id,
            WorkerEntry {
                pid,
                host,
                conn: Arc::new(Mutex::new(conn)),
                busy_on: None,
            },
        );
        id
    }

    /// Remove a worker (its connection died). Returns the job it was
    /// busy on, if any — the scheduler turns that into a rank failure.
    pub fn leave(&self, id: WorkerId) -> Option<u64> {
        let mut p = self.inner.lock().expect("pool lock");
        p.workers.remove(&id).and_then(|w| w.busy_on)
    }

    /// Number of live workers (busy or idle).
    pub fn live(&self) -> usize {
        self.inner.lock().expect("pool lock").workers.len()
    }

    /// Number of idle workers.
    pub fn idle(&self) -> usize {
        let p = self.inner.lock().expect("pool lock");
        p.workers.values().filter(|w| w.busy_on.is_none()).count()
    }

    /// Claim `n` idle workers for `job`, marking them busy. Returns
    /// `None` (claiming nothing) when fewer than `n` are idle.
    pub fn claim(&self, n: usize, job: u64) -> Option<Vec<WorkerId>> {
        let mut p = self.inner.lock().expect("pool lock");
        let idle: Vec<WorkerId> = p
            .workers
            .iter()
            .filter(|(_, w)| w.busy_on.is_none())
            .map(|(&id, _)| id)
            .take(n)
            .collect();
        if idle.len() < n {
            return None;
        }
        for id in &idle {
            p.workers.get_mut(id).expect("claimed worker").busy_on = Some(job);
        }
        Some(idle)
    }

    /// Return a worker to the idle set (its rank reached a terminal
    /// state for the job it was claimed for).
    pub fn release(&self, id: WorkerId) {
        let mut p = self.inner.lock().expect("pool lock");
        if let Some(w) = p.workers.get_mut(&id) {
            w.busy_on = None;
        }
    }

    /// Send a frame on a worker's control connection. An `Err` means the
    /// connection is dead; the caller treats it like a worker death (the
    /// reader thread will report it too, but the scheduler shouldn't
    /// wait for that to learn the assignment failed).
    pub fn send(&self, id: WorkerId, frame: &Frame) -> std::io::Result<()> {
        let conn = {
            let p = self.inner.lock().expect("pool lock");
            let Some(w) = p.workers.get(&id) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("worker {id} left the pool"),
                ));
            };
            w.conn.clone()
        };
        // The frame write happens outside the pool lock: a stalled
        // worker socket must not freeze the whole census.
        let mut conn = conn.lock().expect("worker conn lock");
        write_frame(&mut *conn, frame)
    }

    /// Send [`Frame::Shutdown`] to every live worker (best-effort).
    pub fn broadcast_shutdown(&self) {
        let conns: Vec<Arc<Mutex<TcpStream>>> = {
            let p = self.inner.lock().expect("pool lock");
            p.workers.values().map(|w| w.conn.clone()).collect()
        };
        for conn in conns {
            let mut conn = conn.lock().expect("worker conn lock");
            let _ = write_frame(&mut *conn, &Frame::Shutdown);
        }
    }

    /// Census snapshot for `GET /workers`.
    pub fn view(&self) -> Vec<WorkerView> {
        let p = self.inner.lock().expect("pool lock");
        p.workers
            .iter()
            .map(|(&id, w)| WorkerView {
                id,
                pid: w.pid,
                host: w.host.clone(),
                busy_on: w.busy_on,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn sock() -> TcpStream {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _ = listener.accept().unwrap();
        client
    }

    #[test]
    fn claim_is_all_or_nothing() {
        let pool = WorkerPool::new();
        let a = pool.join(100, "node-a".into(), sock());
        let _b = pool.join(101, "node-b".into(), sock());
        assert_eq!(pool.live(), 2);
        assert!(pool.claim(3, 1).is_none(), "not enough workers");
        assert_eq!(pool.idle(), 2, "failed claim left nothing marked busy");
        let got = pool.claim(2, 1).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(pool.idle(), 0);
        pool.release(a);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn leave_reports_the_orphaned_job() {
        let pool = WorkerPool::new();
        let a = pool.join(100, "node-a".into(), sock());
        pool.claim(1, 7).unwrap();
        assert_eq!(pool.leave(a), Some(7));
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.leave(a), None, "double leave is inert");
    }

    #[test]
    fn ids_are_never_reused() {
        let pool = WorkerPool::new();
        let a = pool.join(1, "h".into(), sock());
        pool.leave(a);
        let b = pool.join(2, "h".into(), sock());
        assert_ne!(a, b);
    }
}
