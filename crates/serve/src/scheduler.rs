//! The FIFO-with-admission-control job scheduler.
//!
//! One thread owns every lifecycle transition (the event loop in
//! [`run_scheduler`]); everyone else — HTTP handlers, worker-connection
//! readers — communicates with it through [`Event`]s. Single-threaded
//! transitions make the state machine in `job.rs` trivially race-free:
//! a job cannot be finalized twice, a worker cannot be claimed by two
//! jobs, because only one thread ever does either.
//!
//! Scheduling policy, in one sentence: jobs *start* strictly in
//! submission order, but any prefix of the queue whose demands fit the
//! idle workers runs concurrently on disjoint worker subsets. A job
//! wanting more ranks than are currently *idle* waits at the head (no
//! overtaking — later small jobs queue behind it); a job wanting more
//! ranks than are *alive* can never run and fails immediately. The
//! gateway applies the same test at submission time, answering 503, so
//! clients learn about hopeless jobs synchronously.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;

use patternlets_metrics::FleetMetrics;
use patternlets_net::frame::Frame;
use patternlets_net::rendezvous::RendezvousCore;

use crate::job::{JobPhase, JobTable};
use crate::pool::{WorkerId, WorkerPool};

/// Everything that can change the scheduler's mind.
#[derive(Debug)]
pub enum Event {
    /// A job entered the table in `Queued` phase.
    Submitted(u64),
    /// A worker joined the pool (try scheduling: queued jobs may fit now).
    WorkerJoined(WorkerId),
    /// A worker's control connection died.
    WorkerDead(WorkerId),
    /// One rank of a job reached its terminal state.
    RankDone {
        /// The worker that ran the rank.
        worker: WorkerId,
        /// The job.
        job: u64,
        /// The rank within the job.
        rank: u64,
        /// Clean finish?
        ok: bool,
        /// Error text when not ok.
        error: String,
    },
    /// Begin graceful shutdown: fail the queue, drain running jobs,
    /// then stop.
    Drain,
}

/// Monotonic gateway counters, shared with the HTTP layer for
/// `GET /metrics`.
#[derive(Default)]
pub struct GatewayStats {
    /// Jobs accepted by `POST /jobs`.
    pub submitted: AtomicU64,
    /// Jobs that reached `Completed`.
    pub completed: AtomicU64,
    /// Jobs that reached `Failed`.
    pub failed: AtomicU64,
    /// Worker-death retries performed.
    pub retried: AtomicU64,
    /// Submissions rejected with 503.
    pub rejected: AtomicU64,
}

/// How far a job's epoch blocks are spaced: each attempt of each job
/// registers worlds in its own `1 << EPOCH_BLOCK_BITS`-wide range.
/// 2^20 worlds per attempt is beyond any patternlet's appetite.
pub const EPOCH_BLOCK_BITS: u32 = 20;

/// Retry attempts are sub-numbered inside the job's epoch space.
const MAX_ATTEMPTS: u64 = 64;

/// The epoch block for one attempt of one job.
pub fn epoch_base(job: u64, attempt: u32) -> u64 {
    (job * MAX_ATTEMPTS + attempt as u64) << EPOCH_BLOCK_BITS
}

struct RunningJob {
    /// Worker per rank (index = rank).
    workers: Vec<WorkerId>,
    /// Ranks still awaiting a terminal report.
    pending: Vec<bool>,
    /// First rank-level error, if any.
    rank_error: Option<String>,
    /// Set when a worker died mid-job (retryable failure class).
    death: Option<String>,
    attempt: u32,
}

pub(crate) struct Scheduler {
    pub table: Arc<JobTable>,
    pub pool: Arc<WorkerPool>,
    pub fleet: Arc<FleetMetrics>,
    pub stats: Arc<GatewayStats>,
    pub core: Arc<RendezvousCore>,
    pub quiet: bool,
    queue: VecDeque<(u64, u32)>,
    running: HashMap<u64, RunningJob>,
    draining: bool,
}

impl Scheduler {
    pub fn new(
        table: Arc<JobTable>,
        pool: Arc<WorkerPool>,
        fleet: Arc<FleetMetrics>,
        stats: Arc<GatewayStats>,
        core: Arc<RendezvousCore>,
        quiet: bool,
    ) -> Self {
        Scheduler {
            table,
            pool,
            fleet,
            stats,
            core,
            quiet,
            queue: VecDeque::new(),
            running: HashMap::new(),
            draining: false,
        }
    }

    /// A job attempt is doomed (a member died or a rank errored): abort
    /// its rendezvous epoch block so sibling ranks parked there — or
    /// about to park there — fail immediately instead of waiting out the
    /// register timeout on a world that can never assemble.
    fn abort_attempt(&self, job: u64, attempt: u32) {
        let lo = epoch_base(job, attempt);
        self.core.abort_block(lo, lo + (1 << EPOCH_BLOCK_BITS));
    }

    fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.quiet {
            println!("pmserve: {msg}");
        }
    }

    /// True when the loop should stop: draining and nothing in flight.
    fn drained(&self) -> bool {
        self.draining && self.running.is_empty()
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Submitted(id) => {
                if self.draining {
                    self.fail_job(id, "daemon is draining".to_string());
                } else {
                    self.queue.push_back((id, 0));
                    self.try_schedule();
                }
            }
            Event::WorkerJoined(id) => {
                self.log(format_args!(
                    "worker {id} joined ({} live)",
                    self.pool.live()
                ));
                self.try_schedule();
            }
            Event::WorkerDead(id) => self.worker_dead(id),
            Event::RankDone {
                worker,
                job,
                rank,
                ok,
                error,
            } => self.rank_done(worker, job, rank, ok, error),
            Event::Drain => {
                self.draining = true;
                self.log(format_args!(
                    "draining ({} running, {} queued)",
                    self.running.len(),
                    self.queue.len()
                ));
                while let Some((id, _)) = self.queue.pop_front() {
                    self.fail_job(id, "daemon is draining".to_string());
                }
            }
        }
    }

    fn fail_job(&mut self, id: u64, error: String) {
        if let Some(job) = self.table.get(id) {
            self.log(format_args!("job {id} failed: {error}"));
            job.set_phase(JobPhase::Failed(error));
            self.stats.failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Launch queue entries in FIFO order while they fit the idle set.
    fn try_schedule(&mut self) {
        while let Some(&(id, attempt)) = self.queue.front() {
            let Some(job) = self.table.get(id) else {
                self.queue.pop_front();
                continue;
            };
            let np = job.spec.np;
            if np > self.pool.live() {
                // Hopeless: the membership shrank below the job's needs.
                self.queue.pop_front();
                self.fail_job(
                    id,
                    format!("needs {np} workers, only {} alive", self.pool.live()),
                );
                continue;
            }
            let Some(workers) = self.pool.claim(np, id) else {
                // Not enough idle workers *yet*; FIFO means nobody
                // overtakes the head.
                return;
            };
            self.queue.pop_front();
            self.launch(id, attempt, workers);
        }
    }

    fn launch(&mut self, id: u64, attempt: u32, workers: Vec<WorkerId>) {
        let job = self.table.get(id).expect("launched job exists");
        let np = workers.len();
        self.log(format_args!(
            "job {id} ({}, np={np}) starting on workers {workers:?}{}",
            job.spec.patternlet,
            if attempt > 0 {
                format!(" [attempt {}]", attempt + 1)
            } else {
                String::new()
            }
        ));
        job.set_phase(JobPhase::Running);
        let mut record = RunningJob {
            workers: workers.clone(),
            pending: vec![true; np],
            rank_error: None,
            death: None,
            attempt,
        };
        for (rank, &worker) in workers.iter().enumerate() {
            let assign = Frame::JobAssign {
                job: id,
                patternlet: job.spec.patternlet.clone(),
                np: np as u64,
                rank: rank as u64,
                epoch_base: epoch_base(id, attempt),
                on: job.spec.on,
                chaos: job.spec.chaos.clone(),
                trace: job.spec.trace,
            };
            if self.pool.send(worker, &assign).is_err() {
                // The worker died between claim and send; mark its rank
                // dead now — the reader thread's WorkerDead event will
                // find the pool entry already gone and do nothing.
                self.pool.leave(worker);
                record.pending[rank] = false;
                record.death = Some(format!("rank {rank} died (worker {worker})"));
            }
        }
        if record.death.is_some() {
            self.abort_attempt(id, attempt);
        }
        self.running.insert(id, record);
        self.maybe_finalize(id);
    }

    fn worker_dead(&mut self, id: WorkerId) {
        let orphaned = self.pool.leave(id);
        let Some(job) = orphaned else {
            // Idle (or already-removed) worker: membership shrinks,
            // nothing else changes.
            self.log(format_args!("worker {id} left ({} live)", self.pool.live()));
            self.try_schedule();
            return;
        };
        self.log(format_args!(
            "worker {id} died while running job {job} ({} live)",
            self.pool.live()
        ));
        if let Some(record) = self.running.get_mut(&job) {
            let attempt = record.attempt;
            if let Some(rank) = record.workers.iter().position(|&w| w == id) {
                if record.pending[rank] {
                    record.pending[rank] = false;
                    // First death wins: the verdict names the rank whose
                    // loss doomed the attempt.
                    if record.death.is_none() {
                        record.death = Some(format!("rank {rank} died (worker {id})"));
                    }
                }
            }
            self.abort_attempt(job, attempt);
            self.maybe_finalize(job);
        }
        self.try_schedule();
    }

    fn rank_done(&mut self, worker: WorkerId, job: u64, rank: u64, ok: bool, error: String) {
        self.pool.release(worker);
        if let Some(record) = self.running.get_mut(&job) {
            let attempt = record.attempt;
            let rank = rank as usize;
            if rank < record.pending.len() && record.pending[rank] {
                record.pending[rank] = false;
                if !ok && record.rank_error.is_none() {
                    record.rank_error = Some(format!("rank {rank}: {error}"));
                }
            }
            if !ok {
                // One rank failing dooms the attempt; unstick any
                // siblings parked in its rendezvous block.
                self.abort_attempt(job, attempt);
            }
            self.maybe_finalize(job);
        }
        self.try_schedule();
    }

    fn maybe_finalize(&mut self, id: u64) {
        let done = self
            .running
            .get(&id)
            .is_some_and(|r| r.pending.iter().all(|&p| !p));
        if !done {
            return;
        }
        let record = self.running.remove(&id).expect("checked above");
        let Some(job) = self.table.get(id) else {
            return;
        };
        if let Some(death) = record.death {
            // Worker death is the retryable failure class: the job
            // itself may be fine, the machine under it wasn't.
            if record.attempt < job.spec.retries
                && ((record.attempt + 1) as u64) < MAX_ATTEMPTS
                && !self.draining
            {
                self.log(format_args!(
                    "job {id} lost a worker ({death}); retrying (attempt {}/{})",
                    record.attempt + 2,
                    job.spec.retries + 1
                ));
                self.stats.retried.fetch_add(1, Ordering::Relaxed);
                job.output.reset();
                job.reset_traces();
                job.set_phase(JobPhase::Queued);
                self.queue.push_front((id, record.attempt + 1));
            } else {
                self.fail_job(id, death);
            }
        } else if let Some(error) = record.rank_error {
            self.fail_job(id, error);
        } else {
            self.log(format_args!("job {id} completed"));
            job.set_phase(JobPhase::Completed);
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        self.try_schedule();
    }
}

/// Run the scheduler until drain completes (or every event sender is
/// gone). On exit, broadcasts [`Frame::Shutdown`] to the pool and prints
/// the final fleet metrics summary.
pub(crate) fn run_scheduler(mut sched: Scheduler, events: Receiver<Event>) {
    while !sched.drained() {
        match events.recv() {
            Ok(event) => sched.handle(event),
            Err(_) => break,
        }
    }
    sched.pool.broadcast_shutdown();
    if !sched.quiet {
        let fleet = sched.fleet.fleet();
        println!(
            "pmserve: drained; {} jobs completed, {} failed, {} retried",
            sched.stats.completed.load(Ordering::Relaxed),
            sched.stats.failed.load(Ordering::Relaxed),
            sched.stats.retried.load(Ordering::Relaxed),
        );
        if !fleet.is_empty() {
            print!("{}", patternlets_metrics::render_summary(&fleet));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_blocks_never_overlap() {
        let mut seen = std::collections::HashSet::new();
        for job in 1..=8u64 {
            for attempt in 0..4u32 {
                let base = epoch_base(job, attempt);
                assert!(seen.insert(base));
                // Blocks are at least a full block apart.
                assert_eq!(base % (1 << EPOCH_BLOCK_BITS), 0);
            }
        }
    }
}
