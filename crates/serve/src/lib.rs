#![warn(missing_docs)]
//! # patternlets-serve
//!
//! Patternlets-as-a-service: the `pmserve` elastic cluster daemon and
//! its HTTP job gateway.
//!
//! Where `pmrun` is a one-shot launcher — spawn `np` workers, run one
//! patternlet, exit — `pmserve` is the long-lived form of the same
//! machinery. A persistent daemon owns:
//!
//! * the **membership core** ([`patternlets_net::rendezvous::RendezvousCore`]),
//!   shared with `pmrun`, embedded in the daemon's cluster listener so
//!   every job's worlds rendezvous through the daemon itself;
//! * an **elastic worker pool** ([`pool::WorkerPool`]): worker processes
//!   join and leave between jobs; membership is "whoever is connected";
//! * a **FIFO scheduler with admission control** ([`scheduler`]): jobs
//!   start in submission order, small jobs run concurrently on disjoint
//!   idle worker subsets, and jobs that can't fit today's membership are
//!   refused with 503 at the gateway;
//! * a **hand-rolled HTTP/1.1 gateway** ([`http`], [`daemon`]):
//!   `POST /jobs`, `GET /jobs/:id`, chunked-streaming
//!   `GET /jobs/:id/output`, fleet-wide Prometheus `GET /metrics`
//!   (per-job snapshots merged via [`patternlets_metrics::FleetMetrics`]),
//!   and `GET /workers`.
//!
//! Fault behavior inherits the net crate's machinery: a worker SIGKILLed
//! mid-job takes down exactly that job (its peers observe the rank
//! failure; the daemon observes the control-connection EOF) and the
//! daemon keeps serving — optionally retrying the job on the surviving
//! membership.

pub mod client;
pub mod daemon;
pub mod http;
pub mod job;
pub mod json;
pub mod pool;
pub mod scheduler;
pub mod worker;

pub use client::{JobStatus, SubmitSpec};
pub use daemon::{start, Daemon, DaemonConfig};
pub use job::{JobPhase, JobSpec};
pub use worker::{run_worker, Assignment, JobLineSink, JobRunner};
