//! In-process end-to-end tests for the pmserve gateway: a real daemon
//! (both listeners on ephemeral loopback ports), real worker protocol
//! over TCP — but with the workers as threads of this test process, each
//! running the patternlet registry through the same runner shape the
//! `patternlets worker` subcommand uses. Everything a production
//! deployment exercises except process isolation, which
//! `crates/collection/tests/serve_e2e.rs` covers with real binaries.
//!
//! The concurrent-jobs tests stick to single-world patternlets
//! (broadcast, reduction, barrier each call `world_run` once): worker
//! threads here share one process-global world-epoch counter, so
//! multi-world jobs running concurrently could observe non-consecutive
//! epoch ordinals. Separate worker *processes* (production) have no such
//! sharing.

use std::time::{Duration, Instant};

use patternlets::harness::{Mode, RunConfig};
use patternlets::registry::find;
use patternlets_core::capture::Output;
use patternlets_metrics::{MetricsHub, MetricsSnapshot};
use patternlets_serve::client::{self, SubmitSpec};
use patternlets_serve::daemon::{self, Daemon, DaemonConfig};
use patternlets_serve::http::http_exchange;
use patternlets_serve::worker::{run_worker, Assignment, JobLineSink};

const DEADLINE: Duration = Duration::from_secs(60);

/// The same runner `patternlets worker` wires in: registry lookup, the
/// CLI's rank-0 banner chrome, output echoed line-wise, metrics on.
fn registry_runner(assign: &Assignment, lines: &JobLineSink) -> Result<MetricsSnapshot, String> {
    let Some(p) = find(&assign.patternlet) else {
        return Err(format!("unknown patternlet {:?}", assign.patternlet));
    };
    let mode = if assign.on { Mode::On } else { Mode::Off };
    if assign.rank == 0 {
        lines.line(&format!(
            "=== {} ({} tasks, directive {}) ===",
            p.name,
            assign.np,
            if mode.is_on() { "ON" } else { "OFF (initial)" }
        ));
        lines.line("");
    }
    let hub = MetricsHub::new();
    let mut cfg = RunConfig::new(assign.np, mode).with_metrics(hub.clone());
    cfg.output = Output::echoing_to(lines.clone().into_line_writer());
    (p.run)(&cfg);
    if assign.rank == 0 {
        lines.line("");
    }
    Ok(hub.snapshot())
}

struct Cluster {
    daemon: Daemon,
    workers: Vec<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Cluster {
    fn start(nworkers: usize) -> Cluster {
        let daemon = daemon::start(DaemonConfig {
            quiet: true,
            ..DaemonConfig::default()
        })
        .expect("daemon starts on ephemeral ports");
        let cluster_addr = daemon.cluster_addr.to_string();
        let workers = (0..nworkers)
            .map(|i| {
                let addr = cluster_addr.clone();
                std::thread::Builder::new()
                    .name(format!("test-worker-{i}"))
                    .spawn(move || run_worker(&addr, registry_runner))
                    .expect("worker thread spawns")
            })
            .collect();
        let deadline = Instant::now() + DEADLINE;
        while daemon.pool.live() < nworkers {
            assert!(Instant::now() < deadline, "workers never joined the pool");
            std::thread::sleep(Duration::from_millis(10));
        }
        Cluster { daemon, workers }
    }

    fn http(&self) -> String {
        self.daemon.http_addr.to_string()
    }

    /// Graceful teardown: drain broadcasts Shutdown, workers exit clean.
    fn stop(self) {
        self.daemon.drain();
        self.daemon.wait();
        for w in self.workers {
            w.join()
                .expect("worker thread exits")
                .expect("worker exits clean");
        }
    }
}

fn submit(http: &str, patternlet: &str, np: usize, on: bool) -> u64 {
    client::submit(
        http,
        &SubmitSpec {
            patternlet: patternlet.to_string(),
            np,
            on,
            chaos: String::new(),
            retries: None,
            trace: false,
        },
    )
    .expect("submission accepted")
}

fn wait_terminal(http: &str, job: u64) -> client::JobStatus {
    let deadline = Instant::now() + DEADLINE;
    loop {
        let status = client::status(http, job).expect("status poll");
        if status.is_terminal() {
            return status;
        }
        assert!(Instant::now() < deadline, "job {job} never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn output_lines(http: &str, job: u64) -> Vec<String> {
    let mut buf = Vec::new();
    client::stream_output(http, job, &mut buf).expect("output streams");
    String::from_utf8(buf)
        .expect("output is utf-8")
        .lines()
        .map(str::to_string)
        .collect()
}

/// What a clean `mpi/broadcast` run at `np` must emit, as a multiset
/// (rank interleaving is nondeterministic, content is not).
fn broadcast_expected(np: usize) -> Vec<String> {
    let full = "[0, 1, 4, 9, 16, 25, 36, 49]";
    let mut lines = vec![
        format!("=== mpi/broadcast ({np} tasks, directive OFF (initial)) ==="),
        String::new(),
        String::new(),
    ];
    for rank in 0..np {
        let before = if rank == 0 { full } else { "[]" };
        lines.push(format!("Process {rank} BEFORE broadcast: {before}"));
        lines.push(format!("Process {rank} AFTER  broadcast: {full}"));
    }
    lines.sort();
    lines
}

/// Satellite: the gateway under concurrent load. Eight jobs submitted
/// from eight client threads against a four-worker pool (so at most two
/// np=2 jobs run at once and the rest queue); every job completes and
/// every job's streamed output is exactly a clean single-run transcript
/// — no cross-job bleed, no lost or duplicated lines.
#[test]
fn eight_concurrent_jobs_complete_with_intact_outputs() {
    let cluster = Cluster::start(4);
    let http = cluster.http();

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let http = http.clone();
            std::thread::spawn(move || {
                let job = submit(&http, "mpi/broadcast", 2, false);
                let status = wait_terminal(&http, job);
                (job, status)
            })
        })
        .collect();
    for handle in clients {
        let (job, status) = handle.join().expect("client thread");
        assert_eq!(status.status, "completed", "job {job}: {:?}", status.error);
        let mut lines = output_lines(&http, job);
        lines.sort();
        assert_eq!(lines, broadcast_expected(2), "job {job} output");
    }

    cluster.stop();
}

/// Sum every sample of `metric` (all label sets) in a Prometheus body.
fn prom_total(body: &str, metric: &str) -> u64 {
    body.lines()
        .filter(|l| {
            l.strip_prefix(metric)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| panic!("unparsable sample: {l}"))
        })
        .sum()
}

/// Satellite: `GET /metrics` aggregates per-job worker snapshots into
/// fleet totals that match the closed-form message counts proven in
/// `crates/collection/tests/message_counts.rs` (p = 4: broadcast p−1 = 3,
/// reduction's two reduce_one passes = 6, the dissemination barrier
/// patternlet = 14 — 23 in all), plus truthful gateway counters.
#[test]
fn fleet_metrics_match_closed_form_counts() {
    let cluster = Cluster::start(4);
    let http = cluster.http();

    for (patternlet, on) in [
        ("mpi/broadcast", false),
        ("mpi/reduction", false),
        ("mpi/barrier", true),
    ] {
        let job = submit(&http, patternlet, 4, on);
        let status = wait_terminal(&http, job);
        assert_eq!(
            status.status, "completed",
            "{patternlet}: {:?}",
            status.error
        );
    }

    let (code, body) = http_exchange(&http, "GET", "/metrics", None).expect("metrics scrape");
    assert_eq!(code, 200);
    assert_eq!(
        prom_total(&body, "patternlets_msgs_sent_total"),
        3 + 6 + 14,
        "fleet sends; body:\n{body}"
    );
    assert_eq!(
        prom_total(&body, "patternlets_msgs_recv_total"),
        3 + 6 + 14,
        "fleet recvs; body:\n{body}"
    );
    assert_eq!(prom_total(&body, "pmserve_jobs_submitted_total"), 3);
    assert_eq!(prom_total(&body, "pmserve_jobs_completed_total"), 3);
    assert_eq!(prom_total(&body, "pmserve_jobs_failed_total"), 0);
    assert_eq!(prom_total(&body, "pmserve_workers_live"), 4);

    // Per-job metrics survive in the job documents too.
    let (code, doc) = http_exchange(&http, "GET", "/jobs/1", None).expect("job doc");
    assert_eq!(code, 200);
    assert!(doc.contains("\"msgs_sent\": 3"), "job 1 doc: {doc}");

    cluster.stop();
}

/// Admission control and bad requests: np beyond the live pool is a
/// synchronous 503 (and counted), malformed bodies are 400s, unknown
/// jobs are 404s — and none of it disturbs a healthy pool.
#[test]
fn gateway_refuses_what_it_cannot_run() {
    let cluster = Cluster::start(2);
    let http = cluster.http();

    let (code, body) = http_exchange(
        &http,
        "POST",
        "/jobs",
        Some("{\"patternlet\": \"mpi/broadcast\", \"np\": 5}"),
    )
    .expect("oversize submit");
    assert_eq!(code, 503, "np=5 on 2 workers: {body}");
    assert!(body.contains("only 2 alive"), "{body}");

    let (code, _) = http_exchange(&http, "POST", "/jobs", Some("not json")).expect("bad body");
    assert_eq!(code, 400);
    let (code, _) = http_exchange(&http, "POST", "/jobs", Some("{\"np\": 2}")).expect("no name");
    assert_eq!(code, 400);
    let (code, _) = http_exchange(&http, "GET", "/jobs/999", None).expect("unknown job");
    assert_eq!(code, 404);

    // An unknown patternlet is accepted (the gateway doesn't own the
    // registry) and fails cleanly at run time with the workers' error.
    let job = submit(&http, "mpi/no-such-patternlet", 2, false);
    let status = wait_terminal(&http, job);
    assert_eq!(status.status, "failed");
    assert!(
        status
            .error
            .as_deref()
            .unwrap_or("")
            .contains("unknown patternlet"),
        "error: {:?}",
        status.error
    );

    // The pool is still healthy: a real job completes afterwards.
    let job = submit(&http, "mpi/broadcast", 2, false);
    assert_eq!(wait_terminal(&http, job).status, "completed");

    let (code, body) = http_exchange(&http, "GET", "/metrics", None).expect("metrics");
    assert_eq!(code, 200);
    assert_eq!(prom_total(&body, "pmserve_jobs_rejected_total"), 1);
    assert_eq!(prom_total(&body, "pmserve_jobs_failed_total"), 1);

    cluster.stop();
}
