//! The linear stage graph: `source → stage → … → sink`, one thread per
//! stage, bounded queues between them.
//!
//! This is the paper's pipeline patternlet shape lifted to a reusable
//! builder: each `stage` call appends a transform and the whole graph is
//! inert until [`Pipeline::run`] — building the pipeline allocates
//! nothing and spawns nothing, so a patternlet can describe the same
//! graph and then run it serially (mode OFF) or concurrently (mode ON).
//!
//! Order preservation falls out of the topology: every queue is FIFO and
//! every stage is a single thread, so items leave the sink in exactly the
//! order the source produced them — no sequence numbers needed (the farm
//! is where those live).
//!
//! That same topology fact — every queue is statically 1:1 — is why the
//! edges here are the lock-free [`spsc_edge`](crate::spsc_edge) rings
//! rather than the mutex-guarded MPMC channel the farm uses: a pipeline
//! edge never has a second producer or consumer to synchronize with, so
//! it pays two atomics per batch instead of a lock acquisition.

use crate::channel::batch_for;
use crate::spsc_edge::{spsc_edge, SpscReceiver};
use crate::Obs;
use std::thread::JoinHandle;

/// Everything a build needs: queue shape, observability, and the spawned
/// stage threads (joined by `run` after the sink drains).
struct Ctx {
    capacity: usize,
    obs: Obs,
    handles: Vec<JoinHandle<()>>,
    next_queue: usize,
}

impl Ctx {
    fn alloc_queue(&mut self) -> usize {
        let q = self.next_queue;
        self.next_queue += 1;
        q
    }
}

/// The deferred construction of a pipeline suffix: spawns the stage
/// threads into `Ctx` and hands back the suffix's output queue.
type BuildFn<T> = Box<dyn FnOnce(&mut Ctx) -> SpscReceiver<T> + Send>;

/// A pipeline whose last stage yields items of type `T`. Extend it with
/// [`Pipeline::stage`], execute it with [`Pipeline::run`] or
/// [`Pipeline::collect`].
pub struct Pipeline<T: Send + 'static> {
    build: BuildFn<T>,
    stages: usize,
}

impl<T: Send + 'static> Pipeline<T> {
    /// The head of a pipeline: a source stage that feeds `items` into the
    /// first queue (blocking when downstream backs up).
    pub fn source<I>(items: I) -> Pipeline<T>
    where
        I: IntoIterator<Item = T> + Send + 'static,
        I::IntoIter: Send,
    {
        Pipeline {
            build: Box::new(move |ctx| {
                let (tx, rx) = spsc_edge(ctx.capacity, ctx.alloc_queue(), &ctx.obs);
                let tx = tx.for_lane(0);
                let chunk = batch_for(ctx.capacity);
                ctx.handles.push(std::thread::spawn(move || {
                    let mut batch = Vec::with_capacity(chunk);
                    for item in items {
                        batch.push(item);
                        if batch.len() == chunk && !tx.send_many(batch.drain(..)) {
                            return; // downstream abandoned the stream
                        }
                    }
                    tx.send_many(batch);
                    // tx drops here: EOS propagates to the next stage.
                }));
                rx
            }),
            stages: 1,
        }
    }

    /// Append a transform stage: its own thread, its own output queue.
    pub fn stage<U, F>(self, mut f: F) -> Pipeline<U>
    where
        U: Send + 'static,
        F: FnMut(T) -> U + Send + 'static,
    {
        let upstream = self.build;
        let lane = self.stages;
        Pipeline {
            build: Box::new(move |ctx| {
                let input = upstream(ctx).for_lane(lane);
                let (tx, rx) = spsc_edge(ctx.capacity, ctx.alloc_queue(), &ctx.obs);
                let tx = tx.for_lane(lane);
                let chunk = batch_for(ctx.capacity);
                ctx.handles.push(std::thread::spawn(move || {
                    let mut out = Vec::with_capacity(chunk);
                    while let Some(batch) = input.recv_many(chunk) {
                        out.extend(batch.into_iter().map(&mut f));
                        if !tx.send_many(out.drain(..)) {
                            break;
                        }
                    }
                }));
                rx
            }),
            stages: self.stages + 1,
        }
    }

    /// Number of stages described so far (source counts as one).
    pub fn stage_count(&self) -> usize {
        self.stages
    }

    /// Spawn the stage threads, drive every item through `sink` on the
    /// calling thread, and join the stages once the stream ends.
    pub fn run<F: FnMut(T)>(self, capacity: usize, obs: &Obs, mut sink: F) {
        let mut ctx = Ctx {
            capacity: capacity.max(1),
            obs: obs.clone(),
            handles: Vec::new(),
            next_queue: 0,
        };
        let sink_lane = self.stages;
        let chunk = batch_for(ctx.capacity);
        let rx = (self.build)(&mut ctx).for_lane(sink_lane);
        while let Some(batch) = rx.recv_many(chunk) {
            for item in batch {
                sink(item);
            }
        }
        drop(rx);
        for h in ctx.handles {
            h.join().expect("stage thread panicked");
        }
    }

    /// [`Pipeline::run`] into a `Vec`.
    pub fn collect(self, capacity: usize, obs: &Obs) -> Vec<T> {
        let mut out = Vec::new();
        self.run(capacity, obs, |item| out.push(item));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_three_stage_pipeline_preserves_order() {
        let out = Pipeline::source(0..1000)
            .stage(|x: i32| x * 2)
            .stage(|x| x + 1)
            .collect(4, &Obs::none());
        let expected: Vec<i32> = (0..1000).map(|x| x * 2 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn stages_change_types_along_the_way() {
        let out = Pipeline::source(vec!["7", "11", "13"])
            .stage(|s: &str| s.parse::<u32>().unwrap())
            .stage(|n| n * n)
            .collect(2, &Obs::none());
        assert_eq!(out, vec![49, 121, 169]);
    }

    #[test]
    fn an_empty_source_is_a_clean_noop() {
        let out = Pipeline::source(Vec::<u8>::new())
            .stage(|x| x)
            .collect(1, &Obs::none());
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_queues_backpressure_without_deadlock() {
        // capacity 1 forces a full handoff at every boundary.
        let out = Pipeline::source(0..500)
            .stage(|x: u64| x + 1)
            .stage(|x| x * 3)
            .stage(|x| x - 2)
            .collect(1, &Obs::none());
        assert_eq!(out.len(), 500);
        assert_eq!(out[499], (499 + 1) * 3 - 2);
    }

    #[test]
    fn every_queue_gets_its_own_metrics_lane() {
        let hub = patternlets_metrics::MetricsHub::new();
        let obs = Obs {
            tracer: None,
            metrics: Some(hub.clone()),
        };
        Pipeline::source(0..10)
            .stage(|x: i32| x)
            .run(4, &obs, |_| {});
        let snap = hub.snapshot();
        // Two queues (source→stage, stage→sink), lanes 0 and 1, each saw
        // all ten items in and out.
        let lanes: Vec<usize> = snap.lanes.iter().map(|l| l.lane).collect();
        assert_eq!(lanes, vec![0, 1]);
        for lane in &snap.lanes {
            assert_eq!(
                lane.counter(patternlets_metrics::CounterId::StreamItemsIn),
                10
            );
            assert_eq!(
                lane.counter(patternlets_metrics::CounterId::StreamItemsOut),
                10
            );
        }
    }
}
