//! The bounded MPMC channel every stream patternlet is built from.
//!
//! Design constraints, in priority order:
//!
//! 1. **The bound is a hard invariant.** `send` on a full queue *blocks*
//!    until a consumer makes room — it never grows the queue, never drops
//!    the item, never spins. This is the backpressure that keeps a fast
//!    producer from burying a slow stage; the depth gauge can never read
//!    above the capacity, and the `channel_props` proptest pins that.
//! 2. **End-of-stream is unambiguous.** Senders are reference-counted;
//!    when the last one drops (or someone calls [`Sender::close`]) the
//!    channel stops accepting items, consumers drain what is queued, and
//!    then every `recv` returns `None` — the EOS token FastFlow threads
//!    through its queues, here encoded in the type instead of a sentinel
//!    value. Symmetrically, when every `Receiver` is gone, `send` returns
//!    `false` so producers of an abandoned stream stop instead of
//!    deadlocking against a queue nobody will ever drain.
//! 3. **Parking is amortisable.** One mutex guards the deque; two
//!    condvars (`not_full`, `not_empty`) park exactly the side that has
//!    to wait, and waiter counts let the uncontended path skip the
//!    `notify` syscall. That still leaves one wake per item when the two
//!    sides run in lock-step (the common case on few cores: the consumer
//!    pops from a full queue, so *every* pop must wake the parked
//!    producer — a syscall per item). [`Sender::send_many`] and
//!    [`Receiver::recv_many`] exist for exactly that: they move a whole
//!    batch per lock acquisition and pay one park/notify per *batch*,
//!    which is what keeps a trivial-work farm above a million items a
//!    second on a single core.

use crate::Obs;
use parking_lot::{Condvar, Mutex};
use patternlets_metrics::{CounterId, GaugeId};
use patternlets_trace::EventKind;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Items the built-in executors (pipeline stages, farm workers and
/// collectors) move per lock acquisition via [`Sender::send_many`] /
/// [`Receiver::recv_many`]. On a machine with fewer cores than stage
/// threads the two sides of a queue run in lock-step, and an unbatched
/// transfer pays a park/notify *syscall per item*; batching amortises
/// that to one per `BATCH`, which is the difference between ~0.9M and
/// several million trivial items a second on one core.
pub(crate) const BATCH: usize = 32;

/// The per-transfer batch for a queue of `capacity` slots: [`BATCH`],
/// clamped to the capacity (min 1). The clamp aligns the transfer unit
/// with the queue bound: a receiver asking for a *full* queueful moves
/// everything available in one lock acquisition, so a small queue costs
/// one park/notify cycle per `capacity` items — the best it can do.
/// Clamping below capacity is actively harmful (a `capacity/2` batch
/// makes the consumer wake twice to drain one queueful, measured at
/// 0.69M vs 1.10M items/sec through a capacity-8 farm), and clamping
/// above it buys nothing: `send_many`/`recv_many` already move partial
/// batches, so the extra headroom never transfers.
pub(crate) fn batch_for(capacity: usize) -> usize {
    BATCH.min(capacity.max(1))
}

struct Inner<T> {
    items: VecDeque<T>,
    /// Set by [`Sender::close`] or the last `Sender` drop: no more items
    /// will ever be accepted (what is queued still drains).
    closed: bool,
    /// Producers currently parked on `not_full`.
    send_waiters: usize,
    /// Consumers currently parked on `not_empty`.
    recv_waiters: usize,
    /// The one-shot EOS trace event has been emitted.
    eos_traced: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    /// Queue id: the metrics lane for this queue's counters and gauge.
    queue: usize,
    obs: Obs,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn trace(&self, lane: usize, kind: EventKind) {
        if let Some(t) = &self.obs.tracer {
            t.emit(lane, kind);
        }
    }
}

/// The producing half. Cloneable; the channel reaches end-of-stream when
/// the last clone drops. Carries a stage id (`lane`) for trace attribution.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
    lane: usize,
}

/// The consuming half. Cloneable (MPMC): each queued item is delivered to
/// exactly one receiver.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
    lane: usize,
}

/// A bounded channel of `capacity` slots. `queue` is the id under which
/// this queue's metrics are recorded (lane = queue id); `obs` carries the
/// tracer/metrics hooks, both optional.
pub fn bounded<T>(capacity: usize, queue: usize, obs: &Obs) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "a zero-capacity queue can never move an item");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            items: VecDeque::with_capacity(capacity.min(1024)),
            closed: false,
            send_waiters: 0,
            recv_waiters: 0,
            eos_traced: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
        queue,
        obs: obs.clone(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
            lane: 0,
        },
        Receiver { shared, lane: 0 },
    )
}

/// An effectively unbounded channel: `send` never blocks on a full queue.
///
/// Exists for exactly one customer — the farm's **feedback edge**. A
/// cycle in the dataflow graph cannot use a bounded queue: if every
/// worker is blocked pushing feedback into a full queue, no worker is
/// left popping it, and the farm deadlocks. FastFlow makes its feedback
/// queues unbounded for the same reason; acyclic edges should always use
/// [`bounded`].
pub fn unbounded<T>(queue: usize, obs: &Obs) -> (Sender<T>, Receiver<T>) {
    bounded(usize::MAX, queue, obs)
}

impl<T> Sender<T> {
    /// A clone attributed to stage `lane` in the trace.
    pub fn for_lane(&self, lane: usize) -> Sender<T> {
        let mut s = self.clone();
        s.lane = lane;
        s
    }

    /// Push an item, blocking while the queue is full. Returns `false` —
    /// with the item dropped — if the channel is closed or every receiver
    /// is gone; `true` once the item is queued.
    pub fn send(&self, item: T) -> bool {
        let shared = &self.shared;
        let mut inner = shared.inner.lock();
        loop {
            if inner.closed || shared.receivers.load(Ordering::Acquire) == 0 {
                return false;
            }
            if inner.items.len() < shared.capacity {
                break;
            }
            inner.send_waiters += 1;
            shared.not_full.wait(&mut inner);
            inner.send_waiters -= 1;
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        debug_assert!(depth <= shared.capacity, "backpressure bound violated");
        let wake = inner.recv_waiters > 0;
        drop(inner);
        if wake {
            shared.not_empty.notify_one();
        }
        if let Some(m) = &shared.obs.metrics {
            m.incr(shared.queue, CounterId::StreamItemsIn);
            m.gauge_max(shared.queue, GaugeId::StreamQueueDepth, depth as u64);
        }
        shared.trace(
            self.lane,
            EventKind::StagePush {
                queue: shared.queue,
                depth,
            },
        );
        true
    }

    /// Push a whole batch, blocking for room as needed, paying one lock
    /// acquisition and at most one wake per *queue-refill* instead of per
    /// item. The bound still holds at every instant: when the batch is
    /// larger than the free space, the surplus waits for consumers
    /// exactly as [`send`](Sender::send) would.
    ///
    /// Returns `false` if the channel closed or lost its last receiver
    /// part-way (remaining items are dropped), `true` once everything is
    /// queued. An empty batch is a no-op `true`.
    pub fn send_many(&self, items: impl IntoIterator<Item = T>) -> bool {
        let shared = &self.shared;
        let mut items = items.into_iter().peekable();
        while items.peek().is_some() {
            let mut inner = shared.inner.lock();
            while inner.items.len() >= shared.capacity
                && !inner.closed
                && shared.receivers.load(Ordering::Relaxed) > 0
            {
                inner.send_waiters += 1;
                shared.not_full.wait(&mut inner);
                inner.send_waiters -= 1;
            }
            if inner.closed || shared.receivers.load(Ordering::Acquire) == 0 {
                return false;
            }
            let before = inner.items.len();
            while inner.items.len() < shared.capacity {
                match items.next() {
                    Some(item) => inner.items.push_back(item),
                    None => break,
                }
            }
            let after = inner.items.len();
            debug_assert!(after <= shared.capacity, "backpressure bound violated");
            let wake = inner.recv_waiters > 0;
            drop(inner);
            if wake {
                // The batch may be enough for several parked consumers.
                shared.not_empty.notify_all();
            }
            if let Some(m) = &shared.obs.metrics {
                m.add(
                    shared.queue,
                    CounterId::StreamItemsIn,
                    (after - before) as u64,
                );
                m.gauge_max(shared.queue, GaugeId::StreamQueueDepth, after as u64);
            }
            if let Some(t) = &shared.obs.tracer {
                // One push event per item, at the depth it was queued at —
                // the timeline reads the same whether or not it was batched.
                for depth in before + 1..=after {
                    t.emit(
                        self.lane,
                        EventKind::StagePush {
                            queue: shared.queue,
                            depth,
                        },
                    );
                }
            }
        }
        true
    }

    /// Close the channel explicitly: no further sends succeed (from any
    /// clone), queued items still drain. Idempotent.
    pub fn close(&self) {
        self.shared.close();
    }
}

impl<T> Receiver<T> {
    /// A clone attributed to stage `lane` in the trace.
    pub fn for_lane(&self, lane: usize) -> Receiver<T> {
        let mut r = self.clone();
        r.lane = lane;
        r
    }

    /// Pop an item, blocking while the queue is empty and producers are
    /// still live. Returns `None` exactly when the stream is over: closed
    /// (or all senders dropped) *and* fully drained.
    pub fn recv(&self) -> Option<T> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                let depth = inner.items.len();
                let wake = inner.send_waiters > 0;
                drop(inner);
                if wake {
                    shared.not_full.notify_one();
                }
                if let Some(m) = &shared.obs.metrics {
                    m.incr(shared.queue, CounterId::StreamItemsOut);
                }
                shared.trace(
                    self.lane,
                    EventKind::StagePop {
                        queue: shared.queue,
                        depth,
                    },
                );
                return Some(item);
            }
            if inner.closed || shared.senders.load(Ordering::Acquire) == 0 {
                if !inner.eos_traced {
                    inner.eos_traced = true;
                    drop(inner);
                    shared.trace(
                        self.lane,
                        EventKind::StageEos {
                            queue: shared.queue,
                        },
                    );
                }
                return None;
            }
            inner.recv_waiters += 1;
            shared.not_empty.wait(&mut inner);
            inner.recv_waiters -= 1;
        }
    }

    /// Pop up to `max` items in one lock acquisition, blocking while the
    /// queue is empty and producers are still live. Returns between 1 and
    /// `max` items, or `None` at end-of-stream — the batched form of
    /// [`recv`](Receiver::recv), paying one park/notify per batch.
    pub fn recv_many(&self, max: usize) -> Option<Vec<T>> {
        assert!(max > 0, "an empty batch can never make progress");
        let shared = &self.shared;
        let mut inner = shared.inner.lock();
        loop {
            if !inner.items.is_empty() {
                let before = inner.items.len();
                let take = before.min(max);
                let batch: Vec<T> = inner.items.drain(..take).collect();
                let wake = inner.send_waiters > 0;
                drop(inner);
                if wake {
                    // The drain may have made room for several parked
                    // producers.
                    shared.not_full.notify_all();
                }
                if let Some(m) = &shared.obs.metrics {
                    m.add(shared.queue, CounterId::StreamItemsOut, take as u64);
                }
                if let Some(t) = &shared.obs.tracer {
                    // One pop event per item, at the depth it left behind.
                    for popped in 1..=take {
                        t.emit(
                            self.lane,
                            EventKind::StagePop {
                                queue: shared.queue,
                                depth: before - popped,
                            },
                        );
                    }
                }
                return Some(batch);
            }
            if inner.closed || shared.senders.load(Ordering::Acquire) == 0 {
                if !inner.eos_traced {
                    inner.eos_traced = true;
                    drop(inner);
                    shared.trace(
                        self.lane,
                        EventKind::StageEos {
                            queue: shared.queue,
                        },
                    );
                }
                return None;
            }
            inner.recv_waiters += 1;
            shared.not_empty.wait(&mut inner);
            inner.recv_waiters -= 1;
        }
    }

    /// Non-blocking pop: `None` means "empty right now", not EOS.
    pub fn try_recv(&self) -> Option<T> {
        let shared = &self.shared;
        let mut inner = shared.inner.lock();
        let item = inner.items.pop_front()?;
        let wake = inner.send_waiters > 0;
        drop(inner);
        if wake {
            shared.not_full.notify_one();
        }
        if let Some(m) = &shared.obs.metrics {
            m.incr(shared.queue, CounterId::StreamItemsOut);
        }
        Some(item)
    }
}

impl<T> Shared<T> {
    fn close(&self) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        inner.closed = true;
        drop(inner);
        // Both sides may be parked: senders waiting for room must fail,
        // receivers waiting for items must drain-and-finish.
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
            lane: self.lane,
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last producer gone: consumers parked on an empty queue must
            // wake up to observe EOS. Take the lock so the count change
            // cannot slip between a receiver's check and its park.
            let _guard = self.shared.inner.lock();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
            lane: self.lane,
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last consumer gone: producers parked on a full queue must
            // wake up and abandon the stream.
            let _guard = self.shared.inner.lock();
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn items_flow_in_order_spsc() {
        let (tx, rx) = bounded(4, 0, &Obs::none());
        let producer = thread::spawn(move || {
            for i in 0..100 {
                assert!(tx.send(i));
            }
        });
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn eos_after_last_sender_drops_even_with_items_queued() {
        let (tx, rx) = bounded(8, 0, &Obs::none());
        tx.send(1);
        tx.send(2);
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None); // EOS is sticky
    }

    #[test]
    fn a_full_queue_blocks_the_producer_until_a_pop() {
        let (tx, rx) = bounded(2, 0, &Obs::none());
        assert!(tx.send(1));
        assert!(tx.send(2));
        let unblocked = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&unblocked);
        let producer = thread::spawn(move || {
            assert!(tx.send(3)); // must block here: queue is full
            flag.store(1, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(50));
        assert_eq!(unblocked.load(Ordering::SeqCst), 0, "send must be parked");
        assert_eq!(rx.recv(), Some(1)); // makes room
        producer.join().unwrap();
        assert_eq!(unblocked.load(Ordering::SeqCst), 1);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn send_fails_once_all_receivers_are_gone() {
        let (tx, rx) = bounded::<i32>(1, 0, &Obs::none());
        assert!(tx.send(1));
        drop(rx);
        assert!(!tx.send(2), "no receiver will ever drain this");
    }

    #[test]
    fn close_stops_producers_and_drains_consumers() {
        let (tx, rx) = bounded(4, 0, &Obs::none());
        assert!(tx.send(10));
        tx.close();
        assert!(!tx.send(11), "closed channel accepts nothing");
        assert_eq!(rx.recv(), Some(10), "queued items still drain");
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let (tx, rx) = bounded(8, 0, &Obs::none());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..250 {
                        assert!(tx.send(p * 1000 + i));
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || -> Vec<i32> { std::iter::from_fn(|| rx.recv()).collect() })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected, "exactly once, nothing lost or duplicated");
    }

    #[test]
    fn batched_send_and_recv_preserve_order_and_the_bound() {
        // The batch (100 items) dwarfs the capacity (4): send_many must
        // interleave with the drain without ever exceeding the bound.
        let hub = patternlets_metrics::MetricsHub::new();
        let obs = Obs {
            tracer: None,
            metrics: Some(hub.clone()),
        };
        let (tx, rx) = bounded(4, 0, &obs);
        let producer = thread::spawn(move || assert!(tx.send_many(0..100)));
        let mut got = Vec::new();
        while let Some(batch) = rx.recv_many(16) {
            assert!(!batch.is_empty() && batch.len() <= 16);
            got.extend(batch);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        let snap = hub.snapshot();
        assert_eq!(snap.total(CounterId::StreamItemsIn), 100);
        assert_eq!(snap.total(CounterId::StreamItemsOut), 100);
        assert!(snap.total_max(GaugeId::StreamQueueDepth) <= 4, "bound held");
    }

    #[test]
    fn send_many_reports_abandonment_mid_batch() {
        let (tx, rx) = bounded::<u32>(2, 0, &Obs::none());
        drop(rx);
        assert!(!tx.send_many(0..10), "no receiver will ever drain this");
        let (tx, rx) = bounded::<u32>(8, 0, &Obs::none());
        tx.close();
        drop(rx);
        assert!(!tx.send_many(0..3));
        assert!(tx.send_many(std::iter::empty()), "empty batch is a no-op");
    }

    #[test]
    fn recv_many_returns_none_at_eos() {
        let (tx, rx) = bounded(8, 0, &Obs::none());
        assert!(tx.send_many([1, 2, 3]));
        drop(tx);
        assert_eq!(rx.recv_many(8), Some(vec![1, 2, 3]));
        assert_eq!(rx.recv_many(8), None);
        assert_eq!(rx.recv_many(8), None); // EOS is sticky
    }

    #[test]
    fn metrics_count_traffic_and_bound_the_depth_gauge() {
        let hub = patternlets_metrics::MetricsHub::new();
        let obs = Obs {
            tracer: None,
            metrics: Some(hub.clone()),
        };
        let (tx, rx) = bounded(3, 7, &obs);
        for i in 0..3 {
            tx.send(i);
        }
        drop(tx);
        while rx.recv().is_some() {}
        let snap = hub.snapshot();
        assert_eq!(snap.total(CounterId::StreamItemsIn), 3);
        assert_eq!(snap.total(CounterId::StreamItemsOut), 3);
        let hw = snap.total_max(GaugeId::StreamQueueDepth);
        assert!((1..=3).contains(&hw), "high-water {hw} within the bound");
        // Lane attribution: the traffic sits on the queue's id.
        assert_eq!(snap.lanes.len(), 1);
        assert_eq!(snap.lanes[0].lane, 7);
    }

    #[test]
    fn trace_sees_pushes_pops_and_one_eos() {
        let tracer = patternlets_trace::Tracer::new();
        let obs = Obs {
            tracer: Some(tracer.clone()),
            metrics: None,
        };
        let (tx, rx) = bounded(4, 0, &obs);
        tx.send(1);
        tx.send(2);
        drop(tx);
        while rx.recv().is_some() {}
        let _ = rx.recv(); // extra recv after EOS must not re-emit
        let trace = tracer.drain();
        let labels: Vec<_> = trace.events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "stage-push",
                "stage-push",
                "stage-pop",
                "stage-pop",
                "stage-eos"
            ]
        );
    }

    #[test]
    fn batched_ops_trace_per_item() {
        // A reader of the timeline cannot tell a batched transfer from a
        // per-item one: same events, same depths.
        let tracer = patternlets_trace::Tracer::new();
        let obs = Obs {
            tracer: Some(tracer.clone()),
            metrics: None,
        };
        let (tx, rx) = bounded(8, 0, &obs);
        assert!(tx.send_many([10, 20, 30]));
        drop(tx);
        while rx.recv_many(8).is_some() {}
        let trace = tracer.drain();
        let labels: Vec<_> = trace.events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "stage-push",
                "stage-push",
                "stage-push",
                "stage-pop",
                "stage-pop",
                "stage-pop",
                "stage-eos"
            ]
        );
        // Push depths climb 1..=3; pop depths descend 2..=0.
        let depths: Vec<usize> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::StagePush { depth, .. } | EventKind::StagePop { depth, .. } => {
                    Some(depth)
                }
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1, 2, 3, 2, 1, 0]);
    }
}
