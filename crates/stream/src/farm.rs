//! The task farm: one input stream fanned out to N replicated workers.
//!
//! The farm is the streaming form of master-worker: an **emitter** stamps
//! each input item with its emission index and pushes it into a shared
//! work queue, **workers** race to pop and apply the same function, and a
//! **collector** (the calling thread) gathers results — either in
//! completion order (`ordered: false`) or with emission order restored by
//! sequence-number reordering (`ordered: true`, FastFlow's
//! `ff_ofarm`). All threads are scoped, so the worker closure may borrow
//! from the caller's stack.
//!
//! [`farm_feedback`] adds the feedback edge: workers receive a
//! [`Feedback`] handle and may inject *new* work items into their own
//! input queue. That turns the farm into a dynamic task pool — wavefront
//! sweeps and divide-and-conquer both reduce to it. Termination is the
//! interesting part: EOS-by-sender-drop cannot work on a cycle (workers
//! hold senders forever), so the farm counts **in-flight items** — seeds
//! plus injections minus completions — and the worker that finishes the
//! last one closes the queue for everyone.

use crate::channel::{batch_for, bounded, unbounded, Sender};
use crate::Obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Shape of a farm run.
#[derive(Clone)]
pub struct FarmConfig {
    /// Replicated worker count (minimum 1).
    pub workers: usize,
    /// Capacity of the work and result queues.
    pub capacity: usize,
    /// Restore emission order at the collector (`run_farm` only).
    pub ordered: bool,
    /// Observability hooks for every queue.
    pub obs: Obs,
    /// First queue id: the work queue gets `queue_base`, the result queue
    /// `queue_base + 1` (so two farms can share one metrics hub).
    pub queue_base: usize,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            workers: 4,
            capacity: 64,
            ordered: true,
            obs: Obs::none(),
            queue_base: 0,
        }
    }
}

/// Run `worker` over every item of `input` on `cfg.workers` threads,
/// feeding each result to `collect` on the calling thread. With
/// `cfg.ordered`, results arrive in emission order; otherwise in
/// completion order.
///
/// Trace lanes: emitter 0, workers `1..=N`, collector `N + 1`.
pub fn run_farm<T, U, I, W, C>(cfg: &FarmConfig, input: I, worker: W, mut collect: C)
where
    T: Send,
    U: Send,
    I: IntoIterator<Item = T>,
    I::IntoIter: Send,
    W: Fn(T) -> U + Sync,
    C: FnMut(U),
{
    let workers = cfg.workers.max(1);
    let capacity = cfg.capacity.max(1);
    let (work_tx, work_rx) = bounded::<(u64, T)>(capacity, cfg.queue_base, &cfg.obs);
    let (res_tx, res_rx) = bounded::<(u64, U)>(capacity, cfg.queue_base + 1, &cfg.obs);
    let chunk = batch_for(capacity);
    let input = input.into_iter();
    std::thread::scope(|s| {
        let emitter_tx = work_tx.for_lane(0);
        drop(work_tx);
        s.spawn(move || {
            let mut batch = Vec::with_capacity(chunk);
            for pair in (0..).zip(input) {
                batch.push(pair);
                if batch.len() == chunk && !emitter_tx.send_many(batch.drain(..)) {
                    return;
                }
            }
            emitter_tx.send_many(batch);
        });
        for w in 0..workers {
            let rx = work_rx.for_lane(w + 1);
            let tx = res_tx.for_lane(w + 1);
            let worker = &worker;
            s.spawn(move || {
                let mut out = Vec::with_capacity(chunk);
                while let Some(batch) = rx.recv_many(chunk) {
                    out.extend(batch.into_iter().map(|(seq, item)| (seq, worker(item))));
                    if !tx.send_many(out.drain(..)) {
                        break;
                    }
                }
            });
        }
        drop(work_rx);
        drop(res_tx);
        let res_rx = res_rx.for_lane(workers + 1);
        if cfg.ordered {
            // The reorder buffer: completion order in, emission order out.
            let mut next = 0u64;
            let mut pending: HashMap<u64, U> = HashMap::new();
            while let Some(batch) = res_rx.recv_many(chunk) {
                for (seq, result) in batch {
                    if seq == next {
                        collect(result);
                        next += 1;
                        while let Some(r) = pending.remove(&next) {
                            collect(r);
                            next += 1;
                        }
                    } else {
                        pending.insert(seq, result);
                    }
                }
            }
            assert!(pending.is_empty(), "every buffered result was released");
        } else {
            while let Some(batch) = res_rx.recv_many(chunk) {
                for (_, result) in batch {
                    collect(result);
                }
            }
        }
    });
}

/// A worker's handle onto its own input queue: the feedback edge.
pub struct Feedback<T> {
    tx: Sender<T>,
    in_flight: AtomicUsizeRef,
}

type AtomicUsizeRef = std::sync::Arc<AtomicUsize>;

impl<T> Feedback<T> {
    /// Inject a new work item into the farm. The in-flight count is
    /// raised *before* the push, so the farm cannot observe a momentary
    /// zero between a parent finishing and its children arriving.
    pub fn inject(&self, item: T) {
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        self.tx.send(item);
    }
}

/// A farm whose workers can inject follow-on work: seeds go in, every
/// item (seed or injected) is handed to `worker` exactly once, and each
/// `Some` return value is gathered into the result (completion order —
/// there is no stable emission order on a cycle to restore).
///
/// The run ends when the in-flight count — seeds plus injections minus
/// completed items — reaches zero; the worker that zeroes it closes the
/// queue, which releases every parked worker through EOS.
pub fn farm_feedback<T, U, W>(cfg: &FarmConfig, seeds: Vec<T>, worker: W) -> Vec<U>
where
    T: Send,
    U: Send,
    W: Fn(T, &Feedback<T>) -> Option<U> + Sync,
{
    let workers = cfg.workers.max(1);
    // The feedback edge must be unbounded: a bounded cycle deadlocks when
    // every worker is blocked pushing and none is left popping.
    let (work_tx, work_rx) = unbounded::<T>(cfg.queue_base, &cfg.obs);
    let (res_tx, res_rx) = bounded::<U>(cfg.capacity.max(1), cfg.queue_base + 1, &cfg.obs);
    let in_flight: AtomicUsizeRef = std::sync::Arc::new(AtomicUsize::new(seeds.len()));
    if seeds.is_empty() {
        return Vec::new();
    }
    for seed in seeds {
        work_tx.send(seed);
    }
    let mut results = Vec::new();
    std::thread::scope(|s| {
        for w in 0..workers {
            let rx = work_rx.for_lane(w + 1);
            let feedback = Feedback {
                tx: work_tx.for_lane(w + 1),
                in_flight: std::sync::Arc::clone(&in_flight),
            };
            let tx = res_tx.for_lane(w + 1);
            let worker = &worker;
            s.spawn(move || {
                while let Some(item) = rx.recv() {
                    let out = worker(item, &feedback);
                    if let Some(result) = out {
                        if !tx.send(result) {
                            break;
                        }
                    }
                    if feedback.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last in-flight item: the stream is over for all.
                        feedback.tx.close();
                    }
                }
            });
        }
        drop(work_tx);
        drop(work_rx);
        drop(res_tx);
        let res_rx = res_rx.for_lane(workers + 1);
        while let Some(result) = res_rx.recv() {
            results.push(result);
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_ordered_farm_restores_emission_order() {
        let mut out = Vec::new();
        let cfg = FarmConfig {
            workers: 8,
            capacity: 4,
            ordered: true,
            ..FarmConfig::default()
        };
        run_farm(
            &cfg,
            0..2000u64,
            |x| {
                // Jittered work so completion order scrambles.
                if x % 17 == 0 {
                    std::thread::yield_now();
                }
                x * x
            },
            |r| out.push(r),
        );
        let expected: Vec<u64> = (0..2000).map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn an_unordered_farm_loses_order_but_nothing_else() {
        let mut out = Vec::new();
        let cfg = FarmConfig {
            workers: 6,
            ordered: false,
            ..FarmConfig::default()
        };
        run_farm(&cfg, 0..1000u32, |x| x, |r| out.push(r));
        out.sort_unstable();
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn a_one_worker_farm_degenerates_to_a_serial_map() {
        let mut out = Vec::new();
        let cfg = FarmConfig {
            workers: 1,
            ..FarmConfig::default()
        };
        run_farm(&cfg, vec![3, 1, 4, 1, 5], |x: i32| x + 10, |r| out.push(r));
        assert_eq!(out, vec![13, 11, 14, 11, 15]);
    }

    #[test]
    fn workers_may_borrow_from_the_callers_stack() {
        let table = vec![10, 20, 30];
        let mut out = Vec::new();
        run_farm(
            &FarmConfig::default(),
            0..3usize,
            |i| table[i],
            |r| out.push(r),
        );
        assert_eq!(out, table);
    }

    #[test]
    fn feedback_injection_processes_the_whole_tree_exactly_once() {
        // Each item n < 100 injects 2n+1 and 2n+2: a binary tree rooted
        // at 0 with every node < 100 internal. All nodes must be visited.
        let cfg = FarmConfig {
            workers: 4,
            ..FarmConfig::default()
        };
        let mut visited = farm_feedback(&cfg, vec![0u32], |n, fb| {
            if n < 100 {
                fb.inject(2 * n + 1);
                fb.inject(2 * n + 2);
            }
            Some(n)
        });
        visited.sort_unstable();
        let mut expected: Vec<u32> = (0..=200).collect();
        expected.sort_unstable();
        assert_eq!(visited, expected);
    }

    #[test]
    fn feedback_with_no_seeds_returns_immediately() {
        let out: Vec<u8> = farm_feedback(&FarmConfig::default(), Vec::<u8>::new(), |x, _| Some(x));
        assert!(out.is_empty());
    }

    #[test]
    fn feedback_workers_can_filter_results() {
        // Count down from each seed, only the zeros are emitted.
        let cfg = FarmConfig {
            workers: 3,
            ..FarmConfig::default()
        };
        let out = farm_feedback(&cfg, vec![5u32, 3, 8], |n, fb| {
            if n == 0 {
                Some(0u32)
            } else {
                fb.inject(n - 1);
                None
            }
        });
        assert_eq!(out, vec![0, 0, 0]);
    }
}
