//! The lock-free 1:1 edge: a typed SPSC ring for pipeline queues.
//!
//! Every [`Pipeline`](crate::Pipeline) queue is statically 1:1 — one
//! stage thread produces, the next consumes — so the MPMC channel's
//! mutex buys nothing there. This module is the FastFlow move: a
//! wait-free-in-the-common-case single-producer/single-consumer ring
//! (two `memcpy`-free slot writes and two atomics per batch) with the
//! same observable contract as [`channel`](crate::channel) — a hard
//! capacity bound, batched transfers, sticky end-of-stream, abandonment
//! when the receiver is gone, and identical metrics/trace emissions, so
//! a timeline reader cannot tell which queue implementation ran.
//!
//! The head/tail publication protocol and the spin-then-park doorbells
//! are the same design as [`patternlets_core::spsc`] (the byte ring
//! under the shm fabric); this ring is typed and in-process, so slots
//! hold `T` directly instead of serialized frames — no encode, no copy,
//! just a move into and out of the slot.
//!
//! The farm keeps the MPMC channel: its work queue is 1:N and its
//! result queue N:1, genuinely multi-consumer/multi-producer.

use crate::Obs;
use patternlets_core::spsc::{spin_budget, Doorbell, PARK_NS};
use patternlets_metrics::{CounterId, GaugeId};
use patternlets_trace::EventKind;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// `yield_now` calls between spinning and parking, mirroring
/// [`patternlets_core::spsc`]: on one hardware thread a yield hands the
/// core straight to the other stage, which is an order of magnitude
/// cheaper than a futex park/wake round trip — the park is the backstop
/// for a genuinely idle edge, not the busy-pipeline common case. The
/// spin phase before it comes from [`spin_budget`] (zero on single-CPU
/// hosts, where spinning can never observe peer progress).
const YIELDS: u32 = 32;

/// A cache-line-aligned position counter: head and tail each get their
/// own line so the producer's stores never invalidate the consumer's.
#[repr(align(64))]
struct Pos(AtomicUsize);

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    capacity: usize,
    /// Producer position: slots below `tail` are written. Monotonic;
    /// the slot index is `pos % capacity`, so no wrap ambiguity.
    tail: Pos,
    /// Consumer position: slots below `head` are consumed.
    head: Pos,
    /// No more items will be accepted (sender closed or dropped);
    /// what is queued still drains.
    closed: AtomicBool,
    /// The receiver is gone: producers must abandon the stream.
    receiver_gone: AtomicBool,
    /// Rung by the producer when items arrive; consumer parks here.
    consumer_bell: Doorbell,
    /// Rung by the consumer when space appears; producer parks here.
    producer_bell: Doorbell,
    /// The one-shot EOS trace event has been emitted.
    eos_traced: AtomicBool,
    queue: usize,
    obs: Obs,
}

// One producer moves `T`s in, one consumer moves them out; the ring
// itself only ever hands a slot to exactly one side at a time.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn trace(&self, lane: usize, kind: EventKind) {
        if let Some(t) = &self.obs.tracer {
            t.emit(lane, kind);
        }
    }

    fn trace_eos_once(&self, lane: usize) {
        if !self.eos_traced.swap(true, Ordering::SeqCst) {
            self.trace(lane, EventKind::StageEos { queue: self.queue });
        }
    }

    /// Count one wait episode on this edge, attributed to the queue's
    /// lane and split by how it resolved — the same spin-vs-park
    /// vocabulary as the byte ring under the shm fabric.
    fn record_wait(&self, waited: bool, parked: bool) {
        if !waited {
            return;
        }
        if let Some(m) = &self.obs.metrics {
            m.incr(
                self.queue,
                if parked {
                    CounterId::SpscParkWaits
                } else {
                    CounterId::SpscSpinWaits
                },
            );
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (the Arc count says so); whatever was
        // produced but never consumed still owns real values.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for pos in head..tail {
            let idx = pos % self.capacity;
            unsafe { (*self.slots[idx].get()).assume_init_drop() };
        }
    }
}

/// The producing half of a 1:1 edge. Not cloneable — single producer is
/// the whole point. Dropping it closes the edge (EOS to the receiver).
pub struct SpscSender<T> {
    ring: Arc<Ring<T>>,
    lane: usize,
}

/// The consuming half of a 1:1 edge. Not cloneable. Dropping it makes
/// further sends return `false` so the producer stops.
pub struct SpscReceiver<T> {
    ring: Arc<Ring<T>>,
    lane: usize,
}

/// A bounded 1:1 edge of `capacity` slots, with the same `queue` id /
/// `obs` observability contract as [`channel::bounded`](crate::bounded).
pub fn spsc_edge<T>(capacity: usize, queue: usize, obs: &Obs) -> (SpscSender<T>, SpscReceiver<T>) {
    assert!(capacity > 0, "a zero-capacity queue can never move an item");
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        capacity,
        tail: Pos(AtomicUsize::new(0)),
        head: Pos(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        receiver_gone: AtomicBool::new(false),
        consumer_bell: Doorbell::new(),
        producer_bell: Doorbell::new(),
        eos_traced: AtomicBool::new(false),
        queue,
        obs: obs.clone(),
    });
    (
        SpscSender {
            ring: Arc::clone(&ring),
            lane: 0,
        },
        SpscReceiver { ring, lane: 0 },
    )
}

impl<T> SpscSender<T> {
    /// This sender, attributed to stage `lane` in the trace. Consumes —
    /// there is only ever one sender to attribute.
    pub fn for_lane(mut self, lane: usize) -> SpscSender<T> {
        self.lane = lane;
        self
    }

    /// Block until at least one slot is free, or the stream is dead.
    /// Returns the current `(tail, head)` on success, `None` when closed
    /// or the receiver is gone.
    fn wait_for_space(&self) -> Option<(usize, usize)> {
        let ring = &*self.ring;
        let tail = ring.tail.0.load(Ordering::Relaxed);
        let mut spun = 0u32;
        let mut parked = false;
        loop {
            if ring.closed.load(Ordering::Acquire) || ring.receiver_gone.load(Ordering::Acquire) {
                ring.record_wait(spun > 0, parked);
                return None;
            }
            let head = ring.head.0.load(Ordering::Acquire);
            if tail - head < ring.capacity {
                ring.record_wait(spun > 0, parked);
                return Some((tail, head));
            }
            if spun < spin_budget() {
                spun += 1;
                std::hint::spin_loop();
                continue;
            }
            if spun < spin_budget() + YIELDS {
                spun += 1;
                std::thread::yield_now();
                continue;
            }
            ring.producer_bell.prepare_park();
            let head = ring.head.0.load(Ordering::Acquire);
            if tail - head < ring.capacity
                || ring.closed.load(Ordering::Acquire)
                || ring.receiver_gone.load(Ordering::Acquire)
            {
                ring.producer_bell.cancel_park();
                continue;
            }
            parked = true;
            ring.producer_bell.park(PARK_NS);
        }
    }

    /// Push an item, blocking while the ring is full. Returns `false` —
    /// with the item dropped — if the edge is closed or the receiver is
    /// gone; `true` once the item is queued.
    pub fn send(&self, item: T) -> bool {
        let Some((tail, head)) = self.wait_for_space() else {
            return false;
        };
        let ring = &*self.ring;
        unsafe { (*ring.slots[tail % ring.capacity].get()).write(item) };
        ring.tail.0.store(tail + 1, Ordering::Release);
        ring.consumer_bell.ring();
        let depth = tail + 1 - head;
        if let Some(m) = &ring.obs.metrics {
            m.incr(ring.queue, CounterId::StreamItemsIn);
            m.gauge_max(ring.queue, GaugeId::StreamQueueDepth, depth as u64);
        }
        ring.trace(
            self.lane,
            EventKind::StagePush {
                queue: ring.queue,
                depth,
            },
        );
        true
    }

    /// Push a whole batch, blocking for space as needed: one tail
    /// publication and at most one doorbell ring per *ring-refill*
    /// instead of per item. The bound holds at every instant — surplus
    /// items wait for the consumer exactly as [`send`](Self::send)
    /// would. Returns `false` if the edge died part-way (remaining items
    /// dropped), `true` once everything is queued.
    pub fn send_many(&self, items: impl IntoIterator<Item = T>) -> bool {
        let ring = &*self.ring;
        let mut items = items.into_iter().peekable();
        while items.peek().is_some() {
            let Some((tail, head)) = self.wait_for_space() else {
                return false;
            };
            let free = ring.capacity - (tail - head);
            let mut pushed = 0;
            while pushed < free {
                match items.next() {
                    Some(item) => {
                        unsafe { (*ring.slots[(tail + pushed) % ring.capacity].get()).write(item) };
                        pushed += 1;
                    }
                    None => break,
                }
            }
            ring.tail.0.store(tail + pushed, Ordering::Release);
            ring.consumer_bell.ring();
            let before = tail - head;
            let after = before + pushed;
            if let Some(m) = &ring.obs.metrics {
                m.add(ring.queue, CounterId::StreamItemsIn, pushed as u64);
                m.gauge_max(ring.queue, GaugeId::StreamQueueDepth, after as u64);
            }
            if ring.obs.tracer.is_some() {
                // One push event per item, at the depth it was queued at —
                // the timeline reads the same as the MPMC channel's.
                for depth in before + 1..=after {
                    ring.trace(
                        self.lane,
                        EventKind::StagePush {
                            queue: ring.queue,
                            depth,
                        },
                    );
                }
            }
        }
        true
    }

    /// Close the edge explicitly: no further sends succeed, queued items
    /// still drain. Idempotent.
    pub fn close(&self) {
        self.ring.closed.store(true, Ordering::SeqCst);
        self.ring.consumer_bell.ring();
        self.ring.producer_bell.ring();
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        self.close();
    }
}

impl<T> SpscReceiver<T> {
    /// This receiver, attributed to stage `lane` in the trace.
    pub fn for_lane(mut self, lane: usize) -> SpscReceiver<T> {
        self.lane = lane;
        self
    }

    /// Block until at least one item is queued, or the stream has ended.
    /// Returns the current `(head, tail)` on items, `None` at EOS.
    fn wait_for_items(&self) -> Option<(usize, usize)> {
        let ring = &*self.ring;
        let head = ring.head.0.load(Ordering::Relaxed);
        let mut spun = 0u32;
        let mut parked = false;
        loop {
            let tail = ring.tail.0.load(Ordering::Acquire);
            if tail != head {
                ring.record_wait(spun > 0, parked);
                return Some((head, tail));
            }
            if ring.closed.load(Ordering::Acquire) {
                // The producer publishes items (tail.store Release) and
                // only then closes, so after observing `closed` the tail
                // must be re-read: both stores can land between our two
                // loads, and trusting the stale empty tail here would
                // drop the final batch. Mirrors `spsc.rs` Consumer::read,
                // which checks availability after `is_closed()`.
                let tail = ring.tail.0.load(Ordering::Acquire);
                if tail != head {
                    ring.record_wait(spun > 0, parked);
                    return Some((head, tail));
                }
                // Closed AND drained (tail == head): the stream is over.
                self.ring.trace_eos_once(self.lane);
                return None;
            }
            if spun < spin_budget() {
                spun += 1;
                std::hint::spin_loop();
                continue;
            }
            if spun < spin_budget() + YIELDS {
                spun += 1;
                std::thread::yield_now();
                continue;
            }
            ring.consumer_bell.prepare_park();
            if ring.tail.0.load(Ordering::Acquire) != head || ring.closed.load(Ordering::Acquire) {
                ring.consumer_bell.cancel_park();
                continue;
            }
            parked = true;
            ring.consumer_bell.park(PARK_NS);
        }
    }

    /// Pop an item, blocking while the ring is empty and the producer is
    /// live. Returns `None` exactly when the stream is over: closed and
    /// fully drained.
    pub fn recv(&self) -> Option<T> {
        let (head, _) = self.wait_for_items()?;
        let ring = &*self.ring;
        let item = unsafe { (*ring.slots[head % ring.capacity].get()).assume_init_read() };
        ring.head.0.store(head + 1, Ordering::Release);
        ring.producer_bell.ring();
        if let Some(m) = &ring.obs.metrics {
            m.incr(ring.queue, CounterId::StreamItemsOut);
        }
        ring.trace(
            self.lane,
            EventKind::StagePop {
                queue: ring.queue,
                depth: ring.tail.0.load(Ordering::Relaxed) - (head + 1),
            },
        );
        Some(item)
    }

    /// Pop up to `max` items in one head publication, blocking while the
    /// ring is empty and the producer is live. Returns between 1 and
    /// `max` items, or `None` at end-of-stream.
    pub fn recv_many(&self, max: usize) -> Option<Vec<T>> {
        assert!(max > 0, "an empty batch can never make progress");
        let (head, tail) = self.wait_for_items()?;
        let ring = &*self.ring;
        let take = (tail - head).min(max);
        let mut batch = Vec::with_capacity(take);
        for pos in head..head + take {
            batch.push(unsafe { (*ring.slots[pos % ring.capacity].get()).assume_init_read() });
        }
        ring.head.0.store(head + take, Ordering::Release);
        ring.producer_bell.ring();
        if let Some(m) = &ring.obs.metrics {
            m.add(ring.queue, CounterId::StreamItemsOut, take as u64);
        }
        if ring.obs.tracer.is_some() {
            let before = tail - head;
            // One pop event per item, at the depth it left behind.
            for popped in 1..=take {
                ring.trace(
                    self.lane,
                    EventKind::StagePop {
                        queue: ring.queue,
                        depth: before - popped,
                    },
                );
            }
        }
        Some(batch)
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.ring.receiver_gone.store(true, Ordering::SeqCst);
        self.ring.producer_bell.ring();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn items_flow_in_order() {
        let (tx, rx) = spsc_edge(4, 0, &Obs::none());
        let producer = thread::spawn(move || {
            for i in 0..1000 {
                assert!(tx.send(i));
            }
        });
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn eos_after_sender_drops_with_items_queued() {
        let (tx, rx) = spsc_edge(8, 0, &Obs::none());
        assert!(tx.send(1));
        assert!(tx.send(2));
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None); // EOS is sticky
    }

    #[test]
    fn no_items_lost_when_close_races_the_empty_check() {
        // Regression: the consumer would observe an empty tail, then see
        // `closed` (both the final publish and the close landing between
        // its two loads) and declare EOS with items still queued. Racing
        // a send-then-drop producer against a draining consumer many
        // times over makes that window easy to hit.
        for round in 0..200 {
            let (tx, rx) = spsc_edge(8, 0, &Obs::none());
            let n = 1 + round % 7;
            let producer = thread::spawn(move || {
                for i in 0..n {
                    assert!(tx.send(i));
                }
                // drop(tx) closes the edge right behind the last publish
            });
            let got: Vec<usize> = std::iter::from_fn(|| rx.recv()).collect();
            producer.join().unwrap();
            assert_eq!(got, (0..n).collect::<Vec<_>>(), "round {round}");
        }
    }

    #[test]
    fn a_full_ring_blocks_the_producer_until_a_pop() {
        let (tx, rx) = spsc_edge(2, 0, &Obs::none());
        assert!(tx.send(1));
        assert!(tx.send(2));
        let unblocked = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&unblocked);
        let producer = thread::spawn(move || {
            assert!(tx.send(3)); // must block here: ring is full
            flag.store(1, Ordering::SeqCst);
        });
        thread::sleep(Duration::from_millis(50));
        assert_eq!(unblocked.load(Ordering::SeqCst), 0, "send must be parked");
        assert_eq!(rx.recv(), Some(1)); // makes room
        producer.join().unwrap();
        assert_eq!(unblocked.load(Ordering::SeqCst), 1);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn send_fails_once_the_receiver_is_gone() {
        let (tx, rx) = spsc_edge::<i32>(1, 0, &Obs::none());
        assert!(tx.send(1));
        drop(rx);
        assert!(!tx.send(2), "no receiver will ever drain this");
        assert!(!tx.send_many(0..10));
    }

    #[test]
    fn a_parked_producer_wakes_when_the_receiver_drops() {
        let (tx, rx) = spsc_edge::<i32>(1, 0, &Obs::none());
        assert!(tx.send(1));
        let producer = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(50));
        drop(rx); // the parked send must observe this and fail
        assert!(!producer.join().unwrap());
    }

    #[test]
    fn batched_transfer_preserves_order_and_the_bound() {
        let hub = patternlets_metrics::MetricsHub::new();
        let obs = Obs {
            tracer: None,
            metrics: Some(hub.clone()),
        };
        let (tx, rx) = spsc_edge(4, 0, &obs);
        let producer = thread::spawn(move || assert!(tx.send_many(0..100)));
        let mut got = Vec::new();
        while let Some(batch) = rx.recv_many(16) {
            assert!(!batch.is_empty() && batch.len() <= 16);
            got.extend(batch);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        let snap = hub.snapshot();
        assert_eq!(snap.total(CounterId::StreamItemsIn), 100);
        assert_eq!(snap.total(CounterId::StreamItemsOut), 100);
        assert!(snap.total_max(GaugeId::StreamQueueDepth) <= 4, "bound held");
    }

    #[test]
    fn blocked_waits_resolve_as_spin_or_park_episodes() {
        let hub = patternlets_metrics::MetricsHub::new();
        let obs = Obs {
            tracer: None,
            metrics: Some(hub.clone()),
        };
        let (tx, rx) = spsc_edge(1, 3, &obs);
        assert!(tx.send(1)); // fills the one-slot ring without waiting
        let producer = thread::spawn(move || assert!(tx.send(2))); // must wait
        thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv(), Some(1)); // frees the slot, resolving the wait
        producer.join().unwrap();
        assert_eq!(rx.recv(), Some(2));
        let snap = hub.snapshot();
        let episodes =
            snap.total(CounterId::SpscSpinWaits) + snap.total(CounterId::SpscParkWaits);
        assert_eq!(episodes, 1, "one blocked send = one wait episode");
    }

    #[test]
    fn dropped_ring_drops_unconsumed_items() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = spsc_edge(8, 0, &Obs::none());
        for _ in 0..5 {
            assert!(tx.send(Counted(Arc::clone(&counter))));
        }
        let got = rx.recv().unwrap(); // one consumed normally
        drop(got);
        drop(tx);
        drop(rx); // four still queued: the ring must drop them
        assert_eq!(counter.load(Ordering::SeqCst), 5, "no value leaked");
    }

    #[test]
    fn trace_matches_the_mpmc_channel_exactly() {
        let tracer = patternlets_trace::Tracer::new();
        let obs = Obs {
            tracer: Some(tracer.clone()),
            metrics: None,
        };
        let (tx, rx) = spsc_edge(8, 0, &obs);
        assert!(tx.send_many([10, 20, 30]));
        drop(tx);
        while rx.recv_many(8).is_some() {}
        let trace = tracer.drain();
        let labels: Vec<_> = trace.events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "stage-push",
                "stage-push",
                "stage-push",
                "stage-pop",
                "stage-pop",
                "stage-pop",
                "stage-eos"
            ]
        );
        let depths: Vec<usize> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::StagePush { depth, .. } | EventKind::StagePop { depth, .. } => {
                    Some(depth)
                }
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1, 2, 3, 2, 1, 0]);
    }
}
