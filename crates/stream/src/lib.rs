//! Streaming dataflow executor for the `stream/` patternlet family.
//!
//! Where the `shmem` runtime parallelises *loops* (a fixed iteration space
//! split across a team) and the `mp` runtime parallelises *ranks* (SPMD
//! processes exchanging messages), this crate parallelises *streams*: an
//! unbounded sequence of items flowing through a graph of stages connected
//! by bounded queues — the FastFlow/TBB-flow-graph model, in safe Rust.
//!
//! Three layers:
//!
//! * [`channel`] — the one concurrency primitive everything else is built
//!   from: a bounded MPMC [`channel::Sender`]/[`channel::Receiver`] pair
//!   with **blocking backpressure** (a full queue blocks the producer — the
//!   queue depth never exceeds its capacity) and a counted-sender
//!   **end-of-stream protocol** (when every `Sender` is dropped or the
//!   channel is closed, `recv` drains what is queued and then returns
//!   `None` to every consumer, exactly once each).
//! * [`pipeline`] — a linear stage graph: `source → stage → … → sink`,
//!   one thread per stage, order-preserving, EOS propagating stage to
//!   stage by `Sender` drop.
//! * [`farm`] — the emitter/worker/collector shape: one input stream
//!   fanned out to N replicated workers, results collected **ordered**
//!   (emission order restored by sequence-number reordering) or
//!   **unordered** (completion order); plus [`farm::farm_feedback`], a
//!   farm whose workers can inject new work items back into their own
//!   input — the feedback edge that turns a farm into a dynamic task pool
//!   (divide-and-conquer, wavefronts).
//!
//! Every queue carries an id that doubles as its *metrics lane*:
//! [`CounterId::StreamItemsIn`]/[`CounterId::StreamItemsOut`] count the
//! traffic and [`GaugeId::StreamQueueDepth`] records the high-water depth
//! per queue, so `--metrics` shows exactly where a pipeline backs up. The
//! tracer sees every push/pop/EOS as [`EventKind::StagePush`]-family
//! events, lane = the calling stage.
//!
//! [`CounterId::StreamItemsIn`]: patternlets_metrics::CounterId::StreamItemsIn
//! [`CounterId::StreamItemsOut`]: patternlets_metrics::CounterId::StreamItemsOut
//! [`GaugeId::StreamQueueDepth`]: patternlets_metrics::GaugeId::StreamQueueDepth
//! [`EventKind::StagePush`]: patternlets_trace::EventKind::StagePush

pub mod channel;
pub mod farm;
pub mod pipeline;
pub mod spsc_edge;

pub use channel::{bounded, unbounded, Receiver, Sender};
pub use farm::{farm_feedback, run_farm, FarmConfig, Feedback};
pub use pipeline::Pipeline;
pub use spsc_edge::{spsc_edge, SpscReceiver, SpscSender};

use patternlets_metrics::MetricsHub;
use patternlets_trace::Tracer;

/// Observability hooks threaded through every queue: both optional, both
/// cheap to clone (`Arc` bumps), both a single `is_some` check when absent.
#[derive(Clone, Default)]
pub struct Obs {
    /// Event tracer; stage lane = the pushing/popping stage's id.
    pub tracer: Option<Tracer>,
    /// Metrics hub; lane = the queue id.
    pub metrics: Option<MetricsHub>,
}

impl Obs {
    /// No observability: the zero-cost default.
    pub fn none() -> Self {
        Self::default()
    }
}
