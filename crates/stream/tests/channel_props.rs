//! Property tests for the stream channel: the three invariants every
//! stream patternlet silently relies on, fuzzed across queue shapes and
//! thread counts.
//!
//! 1. **The bound holds.** Whatever the producer/consumer interleaving,
//!    the depth high-water gauge never exceeds the queue capacity — the
//!    backpressure claim, observed through the same metrics instrument
//!    `--metrics` shows users.
//! 2. **Exactly once.** Every pushed item is popped by exactly one
//!    consumer: nothing lost to a race, nothing delivered twice.
//! 3. **EOS terminates everything.** After the last sender drops, every
//!    consumer — however many, however parked — comes back with `None`;
//!    no stage thread is left blocked forever.

use patternlets_metrics::{CounterId, GaugeId, MetricsHub};
use patternlets_stream::{bounded, Obs};
use proptest::prelude::*;
use std::thread;

/// Drive `producers × items_each` items through one bounded queue with
/// `consumers` threads; return (all popped items sorted, metrics hub).
fn churn(
    capacity: usize,
    producers: usize,
    consumers: usize,
    items_each: usize,
) -> (Vec<u64>, MetricsHub) {
    let hub = MetricsHub::new();
    let obs = Obs {
        tracer: None,
        metrics: Some(hub.clone()),
    };
    let (tx, rx) = bounded::<u64>(capacity, 0, &obs);
    let mut popped: Vec<u64> = Vec::new();
    thread::scope(|s| {
        for p in 0..producers {
            let tx = tx.clone();
            s.spawn(move || {
                for i in 0..items_each {
                    assert!(
                        tx.send((p * items_each + i) as u64),
                        "receivers stayed live"
                    );
                }
            });
        }
        drop(tx); // EOS once every producer finishes
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let rx = rx.clone();
                s.spawn(move || -> Vec<u64> {
                    let mine: Vec<u64> = std::iter::from_fn(|| rx.recv()).collect();
                    // Property 3: recv returned None — and keeps doing so.
                    assert_eq!(rx.recv(), None, "EOS is sticky");
                    mine
                })
            })
            .collect();
        drop(rx);
        for h in handles {
            popped.extend(h.join().expect("consumer thread finished"));
        }
    });
    popped.sort_unstable();
    (popped, hub)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_item_is_popped_exactly_once_and_the_bound_holds(
        capacity in 1usize..16,
        producers in 1usize..5,
        consumers in 1usize..5,
        items_each in 0usize..120,
    ) {
        let (popped, hub) = churn(capacity, producers, consumers, items_each);

        // Property 2: exactly once, across every interleaving.
        let expected: Vec<u64> = (0..(producers * items_each) as u64).collect();
        prop_assert_eq!(popped, expected);

        // Property 1: the depth gauge — fed by every push — never passed
        // the capacity.
        let snap = hub.snapshot();
        let high_water = snap.total_max(GaugeId::StreamQueueDepth);
        prop_assert!(
            high_water <= capacity as u64,
            "high-water {} exceeded capacity {}",
            high_water,
            capacity
        );

        // Conservation re-stated through the counters.
        let total = (producers * items_each) as u64;
        prop_assert_eq!(snap.total(CounterId::StreamItemsIn), total);
        prop_assert_eq!(snap.total(CounterId::StreamItemsOut), total);
    }

    /// EOS under pathological shapes: more consumers than items (some
    /// consumers only ever see the EOS), including zero items.
    #[test]
    fn eos_releases_every_parked_consumer(
        consumers in 1usize..8,
        items in 0usize..4,
    ) {
        let (popped, _) = churn(2, 1, consumers, items);
        prop_assert_eq!(popped.len(), items);
    }

    /// The batched forms obey the same three invariants as the per-item
    /// forms — whatever the batch-size / capacity relationship (batches
    /// both smaller and much larger than the queue).
    #[test]
    fn batched_ops_keep_the_bound_and_lose_nothing(
        capacity in 1usize..16,
        batch in 1usize..48,
        producers in 1usize..4,
        consumers in 1usize..4,
        items_each in 0usize..150,
    ) {
        let hub = MetricsHub::new();
        let obs = Obs { tracer: None, metrics: Some(hub.clone()) };
        let (tx, rx) = bounded::<u64>(capacity, 0, &obs);
        let mut popped: Vec<u64> = Vec::new();
        thread::scope(|s| {
            for p in 0..producers {
                let tx = tx.clone();
                s.spawn(move || {
                    let items = (0..items_each).map(|i| (p * items_each + i) as u64);
                    assert!(tx.send_many(items), "receivers stayed live");
                });
            }
            drop(tx);
            let handles: Vec<_> = (0..consumers)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || -> Vec<u64> {
                        let mut mine = Vec::new();
                        while let Some(chunk) = rx.recv_many(batch) {
                            assert!(!chunk.is_empty() && chunk.len() <= batch);
                            mine.extend(chunk);
                        }
                        assert_eq!(rx.recv_many(batch), None, "EOS is sticky");
                        mine
                    })
                })
                .collect();
            drop(rx);
            for h in handles {
                popped.extend(h.join().expect("consumer thread finished"));
            }
        });
        popped.sort_unstable();
        let expected: Vec<u64> = (0..(producers * items_each) as u64).collect();
        prop_assert_eq!(popped, expected);
        let snap = hub.snapshot();
        prop_assert!(
            snap.total_max(GaugeId::StreamQueueDepth) <= capacity as u64,
            "batched push overran the bound"
        );
        let total = (producers * items_each) as u64;
        prop_assert_eq!(snap.total(CounterId::StreamItemsIn), total);
        prop_assert_eq!(snap.total(CounterId::StreamItemsOut), total);
    }

    /// An explicitly closed channel drains and terminates no matter how
    /// much was queued at close time.
    #[test]
    fn close_drains_then_terminates(
        capacity in 1usize..12,
        queued in 0usize..12,
    ) {
        let queued = queued.min(capacity);
        let (tx, rx) = bounded::<usize>(capacity, 0, &Obs::none());
        for i in 0..queued {
            assert!(tx.send(i));
        }
        tx.close();
        prop_assert!(!tx.send(99), "closed channel accepts nothing");
        let drained: Vec<usize> = std::iter::from_fn(|| rx.recv()).collect();
        prop_assert_eq!(drained, (0..queued).collect::<Vec<_>>());
    }
}
