//! The *Reduction* pattern (paper §III.D).
//!
//! Tasks compute local partial results which must be combined into one
//! global result. Combining pairwise up a tree performs the same `t − 1`
//! operations as a sequential fold but finishes in `⌈lg t⌉` parallel steps
//! (paper Fig. 19). This module provides:
//!
//! * [`ReduceOp`] — an associative combining operation with identity,
//!   mirroring OpenMP's `reduction(op:var)` clause operators and MPI's
//!   built-in `MPI_Op`s;
//! * [`ops`] — the built-in operators the paper enumerates for OpenMP
//!   (`+ * - & | ^ && ||`) plus `min`/`max` (which MPI adds), and
//!   [`ops::FnOp`] for user-defined associative operations (supported by
//!   OpenMP ≥ 4.0 and MPI, as the paper notes);
//! * [`tree_fold`] — the pairwise combining tree itself, used by
//!   [`crate::TeamCtx::reduce`] and by the `mp` collectives.

/// An associative combining operation with an identity element.
///
/// Implementations must be associative — the paper points out MPI requires
/// exactly this of user-defined operations. Commutativity is *not* required:
/// [`tree_fold`] combines adjacent partials only, preserving operand order.
pub trait ReduceOp<T>: Sync {
    /// The identity element (`0` for `+`, `1` for `*`, ...).
    fn identity(&self) -> T;
    /// Combine two values.
    fn combine(&self, a: T, b: T) -> T;
}

/// Combine a slice of partials pairwise up a binary tree, preserving order:
/// round 1 combines `(x0,x1), (x2,x3), …`; round 2 combines the survivors;
/// … until one value remains. Exactly `len − 1` combines in `⌈lg len⌉`
/// rounds — the shape of the paper's Figure 19.
pub fn tree_fold<T: Clone>(op: &dyn ReduceOp<T>, values: &[T]) -> T {
    if values.is_empty() {
        return op.identity();
    }
    let mut level: Vec<T> = values.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks(2);
        for pair in &mut it {
            match pair {
                [a, b] => next.push(op.combine(a.clone(), b.clone())),
                [a] => next.push(a.clone()),
                _ => unreachable!(),
            }
        }
        level = next;
    }
    level.pop().expect("non-empty by construction")
}

/// Sequential left fold — the baseline the reduction tree is compared
/// against (`O(t)` combining time in the paper's analysis).
pub fn seq_fold<T: Clone>(op: &dyn ReduceOp<T>, values: &[T]) -> T {
    values
        .iter()
        .cloned()
        .fold(op.identity(), |acc, v| op.combine(acc, v))
}

/// Built-in reduction operators.
pub mod ops {
    use super::ReduceOp;

    /// Addition (`reduction(+:var)` / `MPI_SUM`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Sum;
    /// Multiplication (`reduction(*:var)` / `MPI_PROD`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Prod;
    /// Minimum (`MPI_MIN`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Min;
    /// Maximum (`MPI_MAX`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Max;
    /// Bitwise and (`reduction(&:var)` / `MPI_BAND`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BitAnd;
    /// Bitwise or (`reduction(|:var)` / `MPI_BOR`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BitOr;
    /// Bitwise xor (`reduction(^:var)` / `MPI_BXOR`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct BitXor;
    /// Logical and over `bool` (`reduction(&&:var)` / `MPI_LAND`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct LogicalAnd;
    /// Logical or over `bool` (`reduction(||:var)` / `MPI_LOR`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct LogicalOr;
    /// Logical xor over `bool` (`MPI_LXOR`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct LogicalXor;

    macro_rules! impl_arith {
        ($($t:ty => $zero:expr, $one:expr, $min_id:expr, $max_id:expr;)*) => {$(
            impl ReduceOp<$t> for Sum {
                fn identity(&self) -> $t { $zero }
                fn combine(&self, a: $t, b: $t) -> $t { a + b }
            }
            impl ReduceOp<$t> for Prod {
                fn identity(&self) -> $t { $one }
                fn combine(&self, a: $t, b: $t) -> $t { a * b }
            }
            impl ReduceOp<$t> for Min {
                fn identity(&self) -> $t { $min_id }
                fn combine(&self, a: $t, b: $t) -> $t { if a < b { a } else { b } }
            }
            impl ReduceOp<$t> for Max {
                fn identity(&self) -> $t { $max_id }
                fn combine(&self, a: $t, b: $t) -> $t { if a > b { a } else { b } }
            }
        )*};
    }

    impl_arith! {
        i32 => 0, 1, i32::MAX, i32::MIN;
        i64 => 0, 1, i64::MAX, i64::MIN;
        u32 => 0, 1, u32::MAX, u32::MIN;
        u64 => 0, 1, u64::MAX, u64::MIN;
        usize => 0, 1, usize::MAX, usize::MIN;
        f32 => 0.0, 1.0, f32::INFINITY, f32::NEG_INFINITY;
        f64 => 0.0, 1.0, f64::INFINITY, f64::NEG_INFINITY;
    }

    macro_rules! impl_bits {
        ($($t:ty),*) => {$(
            impl ReduceOp<$t> for BitAnd {
                fn identity(&self) -> $t { !0 }
                fn combine(&self, a: $t, b: $t) -> $t { a & b }
            }
            impl ReduceOp<$t> for BitOr {
                fn identity(&self) -> $t { 0 }
                fn combine(&self, a: $t, b: $t) -> $t { a | b }
            }
            impl ReduceOp<$t> for BitXor {
                fn identity(&self) -> $t { 0 }
                fn combine(&self, a: $t, b: $t) -> $t { a ^ b }
            }
        )*};
    }

    impl_bits!(i32, i64, u32, u64, usize);

    impl ReduceOp<bool> for LogicalAnd {
        fn identity(&self) -> bool {
            true
        }
        fn combine(&self, a: bool, b: bool) -> bool {
            a && b
        }
    }
    impl ReduceOp<bool> for LogicalOr {
        fn identity(&self) -> bool {
            false
        }
        fn combine(&self, a: bool, b: bool) -> bool {
            a || b
        }
    }
    impl ReduceOp<bool> for LogicalXor {
        fn identity(&self) -> bool {
            false
        }
        fn combine(&self, a: bool, b: bool) -> bool {
            a ^ b
        }
    }

    /// `(min_value, index_of_min)` — `MPI_MINLOC`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct MinLoc;
    /// `(max_value, index_of_max)` — `MPI_MAXLOC`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct MaxLoc;

    macro_rules! impl_loc {
        ($($t:ty => $min_id:expr, $max_id:expr;)*) => {$(
            impl ReduceOp<($t, usize)> for MinLoc {
                fn identity(&self) -> ($t, usize) { ($min_id, usize::MAX) }
                fn combine(&self, a: ($t, usize), b: ($t, usize)) -> ($t, usize) {
                    // Ties break toward the lower index, per MPI.
                    if b.0 < a.0 || (b.0 == a.0 && b.1 < a.1) { b } else { a }
                }
            }
            impl ReduceOp<($t, usize)> for MaxLoc {
                fn identity(&self) -> ($t, usize) { ($max_id, usize::MAX) }
                fn combine(&self, a: ($t, usize), b: ($t, usize)) -> ($t, usize) {
                    if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) { b } else { a }
                }
            }
        )*};
    }

    impl_loc! {
        i32 => i32::MAX, i32::MIN;
        i64 => i64::MAX, i64::MIN;
        f64 => f64::INFINITY, f64::NEG_INFINITY;
    }

    /// A user-defined associative operation, like MPI's `MPI_Op_create` /
    /// OpenMP 4.0's `declare reduction`.
    pub struct FnOp<T, F: Fn(T, T) -> T + Sync> {
        identity: T,
        f: F,
    }

    impl<T: Clone + Sync, F: Fn(T, T) -> T + Sync> FnOp<T, F> {
        /// Wrap `f` (which must be associative) with its identity element.
        pub fn new(identity: T, f: F) -> Self {
            FnOp { identity, f }
        }
    }

    impl<T: Clone + Sync, F: Fn(T, T) -> T + Sync> ReduceOp<T> for FnOp<T, F> {
        fn identity(&self) -> T {
            self.identity.clone()
        }
        fn combine(&self, a: T, b: T) -> T {
            (self.f)(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ops::*;
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_figure_19_values() {
        // "…eight tasks, which respectively find 6, 8, 9, 1, 5, 7, 2, and 4
        // red pixels. To solve the problem these intermediate values must be
        // summed" — total is 42.
        let partials = [6i64, 8, 9, 1, 5, 7, 2, 4];
        assert_eq!(tree_fold(&Sum, &partials), 42);
        assert_eq!(seq_fold(&Sum, &partials), 42);
    }

    #[test]
    fn tree_fold_empty_and_singleton() {
        assert_eq!(tree_fold::<i64>(&Sum, &[]), 0);
        assert_eq!(tree_fold(&Sum, &[7i64]), 7);
        assert_eq!(tree_fold::<i64>(&Prod, &[]), 1);
    }

    #[test]
    fn builtin_ops_match_folds() {
        let xs = [3i64, 1, 4, 1, 5, 9, 2, 6, 5];
        assert_eq!(tree_fold(&Sum, &xs), xs.iter().sum::<i64>());
        assert_eq!(tree_fold(&Prod, &xs), xs.iter().product::<i64>());
        assert_eq!(tree_fold(&Min, &xs), 1);
        assert_eq!(tree_fold(&Max, &xs), 9);
        assert_eq!(tree_fold(&BitAnd, &xs), xs.iter().fold(!0, |a, b| a & b));
        assert_eq!(tree_fold(&BitOr, &xs), xs.iter().fold(0, |a, b| a | b));
        assert_eq!(tree_fold(&BitXor, &xs), xs.iter().fold(0, |a, b| a ^ b));
    }

    #[test]
    fn logical_ops() {
        assert!(!tree_fold(&LogicalAnd, &[true, true, false]));
        assert!(tree_fold(&LogicalAnd, &[true, true, true]));
        assert!(tree_fold(&LogicalOr, &[false, false, true]));
        assert!(!tree_fold(&LogicalOr, &[false, false]));
        assert!(tree_fold(&LogicalXor, &[true, false, true, true]));
        assert!(!tree_fold(&LogicalXor, &[true, true]));
    }

    #[test]
    fn minloc_maxloc_find_value_and_location() {
        let vals: Vec<(i64, usize)> = [5i64, 2, 8, 2, 8].iter().copied().zip(0..).collect();
        assert_eq!(tree_fold(&MinLoc, &vals), (2, 1)); // first min wins
        assert_eq!(tree_fold(&MaxLoc, &vals), (8, 2)); // first max wins
    }

    #[test]
    fn fn_op_user_defined() {
        // gcd is associative with identity 0.
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let op = FnOp::new(0u64, gcd);
        assert_eq!(tree_fold(&op, &[12, 18, 24]), 6);
        assert_eq!(seq_fold(&op, &[12, 18, 24]), 6);
    }

    #[test]
    fn tree_fold_preserves_order_for_noncommutative_ops() {
        // String concatenation: associative, NOT commutative.
        let op = FnOp::new(String::new(), |a: String, b: String| a + &b);
        let parts: Vec<String> = "abcdefg".chars().map(|c| c.to_string()).collect();
        assert_eq!(tree_fold(&op, &parts), "abcdefg");
        assert_eq!(seq_fold(&op, &parts), "abcdefg");
    }

    proptest! {
        /// Tree fold equals sequential fold for every associative builtin,
        /// any input length — the paper's claim that the reduction tree
        /// performs the same t−1 additions, just reordered.
        #[test]
        fn tree_equals_seq_sum(xs in proptest::collection::vec(-1000i64..1000, 0..64)) {
            prop_assert_eq!(tree_fold(&Sum, &xs), seq_fold(&Sum, &xs));
            prop_assert_eq!(tree_fold(&Min, &xs), seq_fold(&Min, &xs));
            prop_assert_eq!(tree_fold(&Max, &xs), seq_fold(&Max, &xs));
            prop_assert_eq!(tree_fold(&BitXor, &xs), seq_fold(&BitXor, &xs));
        }

        #[test]
        fn tree_equals_seq_concat(words in proptest::collection::vec("[a-z]{0,4}", 0..32)) {
            let op = FnOp::new(String::new(), |a: String, b: String| a + &b);
            prop_assert_eq!(tree_fold(&op, &words), words.concat());
        }

        /// MinLoc returns an actual (value, index) pair from the input.
        #[test]
        fn minloc_is_sound(xs in proptest::collection::vec(-100i64..100, 1..32)) {
            let pairs: Vec<(i64, usize)> = xs.iter().copied().zip(0..).collect();
            let (v, i) = tree_fold(&MinLoc, &pairs);
            prop_assert_eq!(v, *xs.iter().min().unwrap());
            prop_assert_eq!(xs[i], v);
            // And it is the FIRST minimum.
            prop_assert!(xs[..i].iter().all(|&x| x > v));
        }
    }
}
