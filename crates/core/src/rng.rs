//! Deterministic, splittable pseudo-random number generation.
//!
//! The reduction patternlet (paper Fig. 20) fills a million-element array
//! with `rand() % 1000`; the virtual-time simulator and the classroom-study
//! model also need randomness. For reproducible tests and benches we use a
//! small, well-understood generator implemented from scratch:
//! SplitMix64 for seeding/splitting and xoshiro256** for the stream
//! (Blackman & Vigna). No global state — every consumer owns its generator.

/// Minimal RNG interface used across the workspace.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift (unbiased enough
    /// for workload generation; we use the simple variant with rejection).
    fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Rejection sampling over the top bits to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal deviate via Box–Muller (polar form avoided to stay
    /// branch-simple; trig form is fine for our volumes).
    fn gen_normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.gen_f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// SplitMix64: the canonical seeder. Passes through every 64-bit state
/// exactly once; used to expand one seed into xoshiro state and to *split*
/// independent streams for per-task randomness.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: fast, high-quality 256-bit-state generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion, per the authors' recommendation.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }

    /// An independent stream for task `task` derived from this generator's
    /// seed state — used to give each thread/rank its own reproducible
    /// stream without sharing.
    pub fn split(&self, task: u64) -> Self {
        let mut sm = SplitMix64::new(self.s[0] ^ task.wrapping_mul(0xA076_1D64_78BD_642F));
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256StarStar { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Fill a slice with `rng_value % modulus`, mirroring the paper's
/// `initialize()` helper in Fig. 20 (`a[i] = rand() % 1000`).
pub fn fill_mod(rng: &mut impl Rng, a: &mut [i64], modulus: u64) {
    for x in a.iter_mut() {
        *x = rng.gen_range(modulus) as i64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_is_deterministic_and_nondegenerate() {
        let mut a = Xoshiro256StarStar::seeded(42);
        let mut b = Xoshiro256StarStar::seeded(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        // Not all equal; not obviously periodic over a short window.
        assert!(va.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn split_streams_differ() {
        let root = Xoshiro256StarStar::seeded(7);
        let mut s0 = root.split(0);
        let mut s1 = root.split(1);
        let a: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = Xoshiro256StarStar::seeded(99);
        for _ in 0..10_000 {
            assert!(rng.gen_range(1000) < 1000);
        }
        // bound 1 always yields 0
        assert_eq!(rng.gen_range(1), 0);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_panics() {
        let mut rng = SplitMix64::new(1);
        let _ = rng.gen_range(0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seeded(5);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_normal_has_plausible_moments() {
        let mut rng = Xoshiro256StarStar::seeded(12345);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "var {var} too far from 1");
    }

    #[test]
    fn fill_mod_matches_paper_initialize_contract() {
        let mut rng = Xoshiro256StarStar::seeded(2015);
        let mut a = vec![0i64; 4096];
        fill_mod(&mut rng, &mut a, 1000);
        assert!(a.iter().all(|&x| (0..1000).contains(&x)));
        // Values actually vary.
        assert!(a.iter().any(|&x| x != a[0]));
    }
}
