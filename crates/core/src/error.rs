//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by the patternlets runtimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A message-passing operation referenced a rank outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The communicator/world size.
        size: usize,
    },
    /// A receive matched a message whose payload had a different type or
    /// element count than the receiver asked for.
    TypeMismatch {
        /// Element type the receiver requested.
        expected: &'static str,
        /// Element type the envelope carried.
        found: String,
    },
    /// A count mismatch in a collective (e.g. scatter of `n` items over `p`
    /// ranks with `n % p != 0` when exact division was required).
    CountMismatch {
        /// Required element count.
        expected: usize,
        /// Count actually supplied/received.
        found: usize,
    },
    /// The runtime detected that no matching send can ever arrive
    /// (all peers finished while a receive was still pending).
    Deadlock(String),
    /// A task panicked inside a parallel construct.
    TaskPanicked {
        /// The panicking task's id.
        task: usize,
        /// Its panic message.
        message: String,
    },
    /// Invalid configuration (zero-sized team, empty world, ...).
    InvalidConfig(String),
    /// Codec failure while decoding a wire message.
    Codec(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for world of size {size}")
            }
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::CountMismatch { expected, found } => {
                write!(f, "count mismatch: expected {expected}, found {found}")
            }
            Error::Deadlock(what) => write!(f, "deadlock detected: {what}"),
            Error::TaskPanicked { task, message } => {
                write!(f, "task {task} panicked: {message}")
            }
            Error::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            Error::Codec(what) => write!(f, "codec error: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::RankOutOfRange { rank: 5, size: 4 };
        assert!(e.to_string().contains("rank 5"));
        assert!(e.to_string().contains("size 4"));

        let e = Error::TypeMismatch { expected: "i32", found: "f64".into() };
        assert!(e.to_string().contains("i32"));
        assert!(e.to_string().contains("f64"));

        let e = Error::Deadlock("recv from 3 tag 7".into());
        assert!(e.to_string().contains("deadlock"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::InvalidConfig("x".into()));
    }
}
