//! Workspace-wide error type.

use std::fmt;

/// Structured description of the operation a rank was executing when a
/// deadlock or rank failure was diagnosed: the operation kind, the peer
/// (source/destination selector), and the tag, plus a free-form detail.
///
/// `#[non_exhaustive]` so fields can grow without breaking matches; build
/// one with [`OpContext::new`] and the chainable setters, or convert a
/// plain `String`/`&str` when only a detail message is available.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct OpContext {
    /// Operation kind (`"recv"`, `"ssend"`, `"barrier"`, `"shrink"`, …).
    pub op: Option<&'static str>,
    /// Peer description — a source/destination rank or selector.
    pub peer: Option<String>,
    /// Tag description — the tag or tag selector in play.
    pub tag: Option<String>,
    /// Free-form diagnostic detail (waits-for graph, kill reason, …).
    pub detail: String,
}

impl OpContext {
    /// Start a context for operation `op`.
    pub fn new(op: &'static str) -> Self {
        OpContext {
            op: Some(op),
            ..Default::default()
        }
    }

    /// Record the peer (rank or selector) involved.
    pub fn peer(mut self, peer: impl fmt::Display) -> Self {
        self.peer = Some(peer.to_string());
        self
    }

    /// Record the tag (or tag selector) involved.
    pub fn tag(mut self, tag: impl fmt::Display) -> Self {
        self.tag = Some(tag.to_string());
        self
    }

    /// Record the free-form diagnostic detail.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }
}

impl From<String> for OpContext {
    fn from(detail: String) -> Self {
        OpContext {
            detail,
            ..Default::default()
        }
    }
}

impl From<&str> for OpContext {
    fn from(detail: &str) -> Self {
        OpContext {
            detail: detail.to_string(),
            ..Default::default()
        }
    }
}

impl fmt::Display for OpContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.op, &self.peer, &self.tag) {
            (Some(op), Some(peer), Some(tag)) => {
                write!(f, "{op}(peer={peer}, tag={tag})")?;
            }
            (Some(op), Some(peer), None) => write!(f, "{op}(peer={peer})")?,
            (Some(op), None, _) => write!(f, "{op}")?,
            (None, _, _) => {}
        }
        if !self.detail.is_empty() {
            if self.op.is_some() {
                write!(f, ": ")?;
            }
            write!(f, "{}", self.detail)?;
        }
        Ok(())
    }
}

/// Errors surfaced by the patternlets runtimes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A message-passing operation referenced a rank outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// The communicator/world size.
        size: usize,
    },
    /// A receive matched a message whose payload had a different type or
    /// element count than the receiver asked for.
    TypeMismatch {
        /// Element type the receiver requested.
        expected: &'static str,
        /// Element type the envelope carried.
        found: String,
    },
    /// A count mismatch in a collective (e.g. scatter of `n` items over `p`
    /// ranks with `n % p != 0` when exact division was required).
    CountMismatch {
        /// Required element count.
        expected: usize,
        /// Count actually supplied/received.
        found: usize,
    },
    /// The runtime detected that no matching send can ever arrive
    /// (all peers finished while a receive was still pending).
    Deadlock(OpContext),
    /// A peer rank failed (was killed by a fault plan, or panicked) and the
    /// operation can therefore never complete. Unlike [`Error::Deadlock`],
    /// this is recoverable: survivors can `agree()` on the failure and
    /// `shrink()` to a working communicator.
    RankFailed {
        /// The failed rank (world numbering).
        rank: usize,
        /// The operation that observed the failure.
        op: OpContext,
    },
    /// A task panicked inside a parallel construct.
    TaskPanicked {
        /// The panicking task's id.
        task: usize,
        /// Its panic message.
        message: String,
    },
    /// Invalid configuration (zero-sized team, empty world, ...).
    InvalidConfig(String),
    /// Codec failure while decoding a wire message.
    Codec(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for world of size {size}")
            }
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::CountMismatch { expected, found } => {
                write!(f, "count mismatch: expected {expected}, found {found}")
            }
            Error::Deadlock(what) => write!(f, "deadlock detected: {what}"),
            Error::RankFailed { rank, op } => {
                write!(f, "rank {rank} failed during {op}")
            }
            Error::TaskPanicked { task, message } => {
                write!(f, "task {task} panicked: {message}")
            }
            Error::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            Error::Codec(what) => write!(f, "codec error: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::RankOutOfRange { rank: 5, size: 4 };
        assert!(e.to_string().contains("rank 5"));
        assert!(e.to_string().contains("size 4"));

        let e = Error::TypeMismatch {
            expected: "i32",
            found: "f64".into(),
        };
        assert!(e.to_string().contains("i32"));
        assert!(e.to_string().contains("f64"));

        let e = Error::Deadlock("recv from 3 tag 7".into());
        assert!(e.to_string().contains("deadlock"));
        assert!(e.to_string().contains("recv from 3 tag 7"));
    }

    #[test]
    fn structured_context_names_op_peer_and_tag() {
        let e = Error::Deadlock(
            OpContext::new("recv")
                .peer("Rank(3)")
                .tag(7)
                .detail("all senders finished"),
        );
        let msg = e.to_string();
        assert!(msg.contains("recv(peer=Rank(3), tag=7)"), "{msg}");
        assert!(msg.contains("all senders finished"), "{msg}");

        let e = Error::RankFailed {
            rank: 2,
            op: OpContext::new("allreduce"),
        };
        let msg = e.to_string();
        assert!(msg.contains("rank 2 failed"), "{msg}");
        assert!(msg.contains("allreduce"), "{msg}");
    }

    #[test]
    fn plain_string_context_still_constructs_and_displays() {
        // Back-compat: the pre-structured construction idiom.
        let e = Error::Deadlock(format!("waits-for cycle among {:?}", [0, 1]).into());
        assert!(e.to_string().contains("waits-for cycle"));
        assert!(matches!(e, Error::Deadlock(_)));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::InvalidConfig("x".into()));
    }
}
