#![warn(missing_docs)]
//! # patternlets-core
//!
//! Shared kernel for the `patternlets-rs` workspace, the Rust reproduction of
//! Adams, *"Patternlets: A Teaching Tool for Introducing Students to Parallel
//! Design Patterns"* (EduPar / IPDPSW 2015).
//!
//! This crate contains the small pieces every other crate leans on:
//!
//! * [`capture`] — a thread-safe line sink. Patternlets *print*; their whole
//!   pedagogical payload is the order (or disorder) of the printed lines.
//!   Tests and the CLI runner observe that payload through [`capture::Sink`].
//! * [`rng`] — a tiny, deterministic, splittable PRNG (SplitMix64 +
//!   xoshiro256**) so that workloads and simulations are reproducible without
//!   global state.
//! * [`timer`] — the `omp_get_wtime()` analogue.
//! * [`crc`] — CRC-32 shared by the wire frame codec and checkpoint files.
//! * [`ids`] — task identifiers shared by the shared-memory and
//!   message-passing runtimes.
//! * [`error`] — the workspace-wide error type.
//! * [`signals`] — the SIGINT/SIGTERM drain flag used by the long-lived
//!   launchers (`pmrun`, `pmserve`) for graceful shutdown.
//! * [`spsc`] — the lock-free single-producer/single-consumer byte ring
//!   shared by the shm fabric (over mmap) and the stream executor's 1:1
//!   fast path (over the heap).

pub mod capture;
pub mod crc;
pub mod error;
pub mod ids;
pub mod reduce;
pub mod rng;
pub mod signals;
pub mod spsc;
pub mod timer;

pub use capture::{CapturedLine, Output, Sink};
pub use crc::{crc32, crc32_extend};
pub use error::{Error, OpContext, Result};
pub use ids::TaskId;
pub use reduce::{ops, seq_fold, tree_fold, ReduceOp};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use timer::Stopwatch;
