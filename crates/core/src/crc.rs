//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Two consumers share this one implementation: the wire frame codec in
//! `patternlets-net` (checksums every frame body so a flipped bit tears
//! the connection down instead of decoding garbage) and the checkpoint
//! files written by the `mp` runtime (so a torn or truncated checkpoint
//! is detected at restore instead of resuming from nonsense). Keeping it
//! here avoids a dependency edge between those crates.

/// One 256-entry lookup table, built at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC-32 of `data` (IEEE; matches zlib's `crc32(0, ...)`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_extend(0, data)
}

/// Continue a finished CRC-32 over more bytes, without concatenating
/// buffers: `crc32_extend(crc32(a), b) == crc32(a ++ b)`. The frame
/// codec uses this to checksum `length prefix ++ body` while the two
/// live in separate buffers on the read path.
pub fn crc32_extend(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn one_bit_flip_changes_the_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn incremental_vs_whole_agree_on_concatenation() {
        let whole = crc32(b"hello world");
        assert_eq!(crc32_extend(crc32(b"hello"), b" world"), whole);
        assert_eq!(crc32_extend(whole, b""), whole);
        assert_eq!(crc32_extend(crc32(b""), b"hello world"), whole);
        let mut piecewise = 0;
        for chunk in b"hello world".chunks(3) {
            piecewise = crc32_extend(piecewise, chunk);
        }
        assert_eq!(piecewise, whole);
    }
}
