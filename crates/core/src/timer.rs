//! Wall-clock timing — the `omp_get_wtime()` analogue.
//!
//! The mutual-exclusion patternlet (paper Fig. 29) brackets work with
//! `omp_get_wtime()` calls and reports total and per-operation times.
//! [`Stopwatch`] offers the same ergonomics on `std::time::Instant`.

use std::time::{Duration, Instant};

/// A simple start/stop stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start (or restart) timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds as `f64`, like `stopTime - startTime` in the paper.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

/// Time a closure, returning `(result, elapsed)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn stopwatch_measures_nonnegative_increasing_time() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        sleep(Duration::from_millis(5));
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b > a);
        assert!(b >= 0.005);
    }

    #[test]
    fn time_returns_result_and_duration() {
        let (v, d) = time(|| {
            sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(2));
    }
}
