//! Task identifiers.
//!
//! The paper uses *task* as "a general term for threads or processes"
//! (§III). Both runtimes in this workspace hand each task a dense id in
//! `0..num_tasks`, mirroring `omp_get_thread_num()` / `MPI_Comm_rank()`.

use std::fmt;

/// A dense task identifier: thread number in a shared-memory team, or rank
/// in a message-passing world.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The conventional master / root task.
    pub const MASTER: TaskId = TaskId(0);

    /// Returns `true` for the master task (id 0).
    #[inline]
    pub fn is_master(self) -> bool {
        self.0 == 0
    }

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(i: usize) -> Self {
        TaskId(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn master_is_zero() {
        assert!(TaskId(0).is_master());
        assert!(!TaskId(1).is_master());
        assert_eq!(TaskId::MASTER, TaskId(0));
    }

    #[test]
    fn display_and_index() {
        assert_eq!(TaskId(7).to_string(), "7");
        assert_eq!(TaskId(7).index(), 7);
        assert_eq!(TaskId::from(3), TaskId(3));
    }

    #[test]
    fn ordering_is_by_index() {
        let mut v = vec![TaskId(2), TaskId(0), TaskId(1)];
        v.sort();
        assert_eq!(v, vec![TaskId(0), TaskId(1), TaskId(2)]);
    }
}
