//! Graceful-termination signals, without a signal-handling dependency.
//!
//! Long-lived launchers (`pmrun`, `pmserve`) want SIGINT/SIGTERM to mean
//! "drain and summarize" rather than "die mid-collective". The standard
//! library exposes no handler API, so this module declares the libc
//! `signal(2)` entry point directly (std already links libc) and installs
//! a handler that does the only thing an async-signal-safe handler may:
//! bump an atomic. Callers poll [`termination_requested`] from their
//! supervision loops.
//!
//! The count is exposed too: a second Ctrl-C while draining is the
//! operator saying "no really, now" — callers should treat
//! `termination_count() > 1` as an immediate-exit request.
//!
//! On non-Unix targets installation is a no-op and the flag never fires.

use std::sync::atomic::{AtomicUsize, Ordering};

static TERMINATIONS: AtomicUsize = AtomicUsize::new(0);

#[cfg(unix)]
mod imp {
    /// Handler type of `signal(2)`; the return value (the previous
    /// handler) is pointer-sized and only ever discarded here.
    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_terminate(_sig: i32) {
        // Only async-signal-safe work here: one atomic increment.
        super::TERMINATIONS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_terminate);
            signal(SIGTERM, on_terminate);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM drain handler for this process. Idempotent;
/// call once near the top of `main`, before spawning workers.
pub fn install_termination_handler() {
    imp::install();
}

/// Has a termination signal arrived since
/// [`install_termination_handler`]?
pub fn termination_requested() -> bool {
    TERMINATIONS.load(Ordering::SeqCst) > 0
}

/// How many termination signals have arrived. `> 1` means the operator
/// signalled again while the process was draining: stop politely waiting.
pub fn termination_count() -> usize {
    TERMINATIONS.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flag flips when the process signals itself — exercising the
    /// real handler path, not just the atomic. (`raise` here is the
    /// handler installation's round trip; the kill-based e2e lives in the
    /// launcher tests.)
    #[cfg(unix)]
    #[test]
    fn self_signal_sets_the_flag() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        install_termination_handler();
        assert!(!termination_requested() || termination_count() > 0);
        let before = termination_count();
        unsafe {
            raise(15);
        }
        // The handler runs synchronously for a self-raised signal.
        assert!(termination_count() > before);
        assert!(termination_requested());
    }
}
