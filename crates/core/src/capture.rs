//! Thread-safe output capture.
//!
//! Every patternlet in the paper communicates its lesson through the order —
//! or deliberate disorder — of lines printed by concurrent tasks (e.g.
//! Figures 2–3, 8–9, 14–15 of the paper). To make those behaviours
//! *observable by tests* rather than only by a human watching a terminal,
//! patternlets print through a [`Sink`] instead of `println!`.
//!
//! A [`Sink`] appends to a shared [`Output`]: an append-only log of
//! [`CapturedLine`]s stamped with the emitting task and a global sequence
//! number. The CLI runner constructs an echoing sink so humans still see the
//! live interleaving; tests construct a silent one and assert ordering
//! properties over the log.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ids::TaskId;

/// One captured line of patternlet output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedLine {
    /// Global sequence number: the order in which lines were *emitted*
    /// across all tasks. Strictly increasing over the whole log.
    pub seq: u64,
    /// The task (thread number / rank) that emitted the line.
    pub task: TaskId,
    /// The text, without a trailing newline.
    pub text: String,
}

#[derive(Default)]
struct Shared {
    lines: Mutex<Vec<CapturedLine>>,
    next_seq: AtomicU64,
    /// Live echo destination, if any. Guarded by its own lock so echoes
    /// are whole lines even when many tasks emit concurrently; the echo is
    /// written inside the capture lock section, so echo order always
    /// equals capture order.
    echo: Option<Mutex<Box<dyn Write + Send>>>,
}

/// An append-only, thread-safe log of captured output lines.
///
/// Cheap to clone (it is an `Arc` underneath); all clones append to the same
/// log.
#[derive(Clone, Default)]
pub struct Output {
    shared: Arc<Shared>,
}

impl Output {
    /// A silent capture log (for tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// A capture log that also echoes every line to stdout (for the CLI
    /// runner, so the live interleaving is visible like the paper's demos).
    pub fn echoing() -> Self {
        Output::echoing_to(std::io::stdout())
    }

    /// A capture log that echoes every line to an arbitrary writer. Each
    /// line is emitted as ONE `write_all` of `text\n`, so concurrent
    /// writers can never tear a line apart mid-text, and the echo stream's
    /// line order matches the capture log's.
    pub fn echoing_to(writer: impl Write + Send + 'static) -> Self {
        Output {
            shared: Arc::new(Shared {
                echo: Some(Mutex::new(Box::new(writer))),
                ..Shared::default()
            }),
        }
    }

    /// A [`Sink`] through which `task` emits lines into this log.
    pub fn sink(&self, task: impl Into<TaskId>) -> Sink {
        Sink {
            output: self.clone(),
            task: task.into(),
        }
    }

    fn push(&self, task: TaskId, text: String) {
        // seq is taken *inside* the same lock section that appends, so the
        // log order and the seq order always agree — and the echo happens
        // there too, so the echoed stream and the capture log agree.
        let mut lines = self.shared.lines.lock();
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(echo) = &self.shared.echo {
            // One write_all per line: text and newline can never be split
            // by another writer's output.
            let mut bytes = Vec::with_capacity(text.len() + 1);
            bytes.extend_from_slice(text.as_bytes());
            bytes.push(b'\n');
            let mut w = echo.lock();
            let _ = w.write_all(&bytes);
            let _ = w.flush();
        }
        lines.push(CapturedLine { seq, task, text });
    }

    /// Snapshot of all lines captured so far, in emission order.
    pub fn lines(&self) -> Vec<CapturedLine> {
        self.shared.lines.lock().clone()
    }

    /// Just the text of every line, in emission order.
    pub fn texts(&self) -> Vec<String> {
        self.shared
            .lines
            .lock()
            .iter()
            .map(|l| l.text.clone())
            .collect()
    }

    /// The lines emitted by one task, in emission order.
    pub fn lines_of(&self, task: impl Into<TaskId>) -> Vec<CapturedLine> {
        let task = task.into();
        self.shared
            .lines
            .lock()
            .iter()
            .filter(|l| l.task == task)
            .cloned()
            .collect()
    }

    /// Number of captured lines.
    pub fn len(&self) -> usize {
        self.shared.lines.lock().len()
    }

    /// True if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index (sequence position) of the first line whose text satisfies
    /// `pred`, or `None`.
    pub fn first_index_where(&self, pred: impl Fn(&str) -> bool) -> Option<usize> {
        self.shared.lines.lock().iter().position(|l| pred(&l.text))
    }

    /// Index of the last line whose text satisfies `pred`, or `None`.
    pub fn last_index_where(&self, pred: impl Fn(&str) -> bool) -> Option<usize> {
        self.shared.lines.lock().iter().rposition(|l| pred(&l.text))
    }

    /// True iff every line matching `before` was emitted earlier than every
    /// line matching `after`. This is the *barrier property* used throughout
    /// the tests for Figures 9 and 12.
    pub fn all_before(&self, before: impl Fn(&str) -> bool, after: impl Fn(&str) -> bool) -> bool {
        match (self.last_index_where(before), self.first_index_where(after)) {
            (Some(last_b), Some(first_a)) => last_b < first_a,
            // Vacuously true when either side is empty.
            _ => true,
        }
    }
}

/// A per-task handle for emitting lines into an [`Output`].
#[derive(Clone)]
pub struct Sink {
    output: Output,
    task: TaskId,
}

impl Sink {
    /// Emit one line (no trailing newline required).
    pub fn println(&self, text: impl Into<String>) {
        self.output.push(self.task, text.into());
    }

    /// The task this sink stamps onto emitted lines.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// A sink for a different task sharing the same log. Used by runtimes
    /// that create per-task sinks from a master sink.
    pub fn for_task(&self, task: impl Into<TaskId>) -> Sink {
        self.output.sink(task)
    }

    /// The underlying output log.
    pub fn output(&self) -> &Output {
        &self.output
    }
}

/// A sink that discards everything — for benches, where we want patternlet
/// code paths without string formatting dominated by capture overhead being
/// stored forever.
pub fn null_sink() -> Sink {
    Output::new().sink(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn captures_in_emission_order() {
        let out = Output::new();
        let s0 = out.sink(0);
        let s1 = out.sink(1);
        s0.println("a");
        s1.println("b");
        s0.println("c");
        assert_eq!(out.texts(), vec!["a", "b", "c"]);
        let lines = out.lines();
        assert_eq!(lines[0].task, TaskId(0));
        assert_eq!(lines[1].task, TaskId(1));
        assert!(lines[0].seq < lines[1].seq && lines[1].seq < lines[2].seq);
    }

    #[test]
    fn lines_of_filters_by_task() {
        let out = Output::new();
        out.sink(0).println("x");
        out.sink(1).println("y");
        out.sink(0).println("z");
        let mine = out.lines_of(0);
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].text, "x");
        assert_eq!(mine[1].text, "z");
    }

    #[test]
    fn all_before_detects_phase_separation() {
        let out = Output::new();
        let s = out.sink(0);
        s.println("BEFORE 1");
        s.println("BEFORE 2");
        s.println("AFTER 1");
        assert!(out.all_before(|t| t.contains("BEFORE"), |t| t.contains("AFTER")));

        let out2 = Output::new();
        let s2 = out2.sink(0);
        s2.println("BEFORE 1");
        s2.println("AFTER 1");
        s2.println("BEFORE 2");
        assert!(!out2.all_before(|t| t.contains("BEFORE"), |t| t.contains("AFTER")));
    }

    #[test]
    fn all_before_is_vacuous_on_empty_sides() {
        let out = Output::new();
        out.sink(0).println("AFTER");
        assert!(out.all_before(|t| t.contains("BEFORE"), |t| t.contains("AFTER")));
        assert!(out.all_before(|t| t.contains("AFTER"), |t| t.contains("BEFORE")));
    }

    #[test]
    fn concurrent_emission_is_safe_and_complete() {
        let out = Output::new();
        thread::scope(|scope| {
            for t in 0..8 {
                let sink = out.sink(t);
                scope.spawn(move || {
                    for i in 0..100 {
                        sink.println(format!("task {t} line {i}"));
                    }
                });
            }
        });
        assert_eq!(out.len(), 800);
        // Per-task order is preserved even though the global interleaving
        // is nondeterministic.
        for t in 0..8usize {
            let mine = out.lines_of(t);
            let expected: Vec<String> = (0..100).map(|i| format!("task {t} line {i}")).collect();
            let got: Vec<String> = mine.into_iter().map(|l| l.text).collect();
            assert_eq!(got, expected);
        }
        // Sequence numbers are unique and dense.
        let mut seqs: Vec<u64> = out.lines().iter().map(|l| l.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..800u64).collect::<Vec<_>>());
    }

    /// A `Write` impl tests can share to observe exactly what the echo
    /// stream emitted, byte for byte.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn echo_never_tears_lines_under_many_writers() {
        // Regression test for output tearing: with many tasks echoing
        // concurrently, every echoed line must arrive whole, and the echo
        // stream's line order must equal the capture log's order.
        let buf = SharedBuf::default();
        let out = Output::echoing_to(buf.clone());
        thread::scope(|scope| {
            for t in 0..8 {
                let sink = out.sink(t);
                scope.spawn(move || {
                    for i in 0..100 {
                        sink.println(format!("task {t} says hello for the {i}th time"));
                    }
                });
            }
        });
        let bytes = buf.0.lock().clone();
        let echoed = String::from_utf8(bytes).expect("echo stream is valid UTF-8");
        assert!(echoed.ends_with('\n'));
        let echoed_lines: Vec<&str> = echoed.lines().collect();
        assert_eq!(echoed_lines.len(), 800);
        // No torn/interleaved fragments: each echoed line is exactly one
        // captured line, in the same order.
        assert_eq!(echoed_lines, out.texts());
    }

    #[test]
    fn echoing_to_writes_each_line_once() {
        let buf = SharedBuf::default();
        let out = Output::echoing_to(buf.clone());
        out.sink(0).println("first");
        out.sink(1).println("second");
        assert_eq!(
            String::from_utf8(buf.0.lock().clone()).unwrap(),
            "first\nsecond\n"
        );
    }

    #[test]
    fn null_sink_swallows_output() {
        let s = null_sink();
        s.println("anything");
        assert_eq!(s.output().len(), 1); // captured but never echoed
    }

    #[test]
    fn first_and_last_index() {
        let out = Output::new();
        let s = out.sink(0);
        for w in ["a", "b", "a", "c"] {
            s.println(w);
        }
        assert_eq!(out.first_index_where(|t| t == "a"), Some(0));
        assert_eq!(out.last_index_where(|t| t == "a"), Some(2));
        assert_eq!(out.first_index_where(|t| t == "zz"), None);
    }
}
