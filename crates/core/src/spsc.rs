//! Lock-free single-producer / single-consumer byte ring.
//!
//! This is the primitive under two fast paths (FastFlow builds its whole
//! pattern runtime on queues of exactly this shape):
//!
//! * the **shm fabric** (`patternlets-net`): one ring per directed peer
//!   pair lives in a memory-mapped file, and whole wire frames
//!   (`[len][crc][body]`, unchanged from the TCP codec) stream through
//!   it without a syscall on the hot path;
//! * the **stream executor** (`patternlets-stream`): 1:1 pipeline edges
//!   reuse the same head/tail/doorbell discipline with typed slots.
//!
//! The ring is a power-of-nothing byte queue: `head` and `tail` are
//! *monotonic* byte counts (they never wrap; positions are `idx % cap`),
//! so `tail - head` is the fill level with no full/empty ambiguity and
//! no reserved slot. The producer owns `tail` and reads `head` with
//! `Acquire`; the consumer owns `head` and reads `tail` with `Acquire`;
//! each publishes its own counter with `Release` *after* the byte copy.
//! That pair of edges is the entire correctness argument: bytes are
//! written before the tail that covers them is visible, and consumed
//! before the head that frees them is visible (DESIGN.md §13 spells it
//! out).
//!
//! Blocking is a three-phase spin → yield → park ladder. Phase one is a
//! short `spin_loop` burst — but only when more than one hardware thread
//! exists ([`spin_budget`] resolves to zero on a single-CPU host, where
//! the peer cannot make progress while we burn the core). Phase two is a
//! bounded run of `yield_now` calls: on one CPU a yield hands the core
//! straight to the peer (~0.7 µs round trip measured on the CI host)
//! where a futex park/wake costs ~5 µs, so a busy peer is almost always
//! caught here. Only then comes the **doorbell** — the waiter sets a
//! parked word, re-checks the counters (closing the set-check race), and
//! sleeps on a futex with a short timeout. The other side rings the bell
//! only when it observes the parked word set, so the uncontended fast
//! path stays two atomic loads and one store. Futexes work on shared
//! mappings, so the same doorbell parks ranks in different processes;
//! on platforms without the raw syscall the doorbell degrades to a
//! bounded sleep-poll with identical semantics.
//!
//! The timeout matters: a blocked side wakes every [`PARK_NS`] even
//! without a bell, which is what lets callers interleave liveness checks
//! (is the peer SIGKILLed?) into an otherwise indefinite wait — the
//! `abort` closure on [`Producer::push_all`] and the stop flag on
//! [`Consumer`] are evaluated at exactly that cadence.

use std::io;
use std::mem::size_of;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Cache line size the header is padded to (x86_64; a safe overestimate
/// elsewhere).
pub const CACHE_LINE: usize = 64;

/// First header word: identifies an initialized ring segment.
pub const RING_MAGIC: u64 = 0x5041_5452_4c52_494e; // "PATRLRIN"

/// Spins before parking. Deliberately small: on a single-CPU host (CI)
/// the peer cannot make progress while we spin, so long spins only burn
/// the quantum.
const SPIN: u32 = 64;

/// `yield_now` calls between spinning and parking. On one hardware
/// thread a yield hands the core straight to the peer (~0.7 µs round
/// trip measured on the CI host) where a futex park/wake costs ~5 µs —
/// so a busy peer is almost always caught in this phase, and the futex
/// doorbell is the backstop for genuinely idle rings, not the common
/// case. Bounded, so an idle wait still reaches the park (and with it
/// the liveness checks) in a handful of microseconds.
const YIELDS: u32 = 32;

/// The spin budget, resolved once per process: [`SPIN`] when another
/// hardware thread could be filling/draining the ring concurrently,
/// zero on a single-CPU host — there, the peer *cannot* run while we
/// spin, so every spin iteration only delays the yield that would hand
/// it the core.
pub fn spin_budget() -> u32 {
    static BUDGET: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cpus > 1 {
            SPIN
        } else {
            0
        }
    })
}

/// Doorbell park timeout in nanoseconds. Bounds how stale a liveness
/// check (`abort` / stop flag) can be while blocked, and caps the lost-
/// wakeup window on fallback platforms.
pub const PARK_NS: u64 = 1_000_000;

// ---------------------------------------------------------------------------
// Futex doorbell
// ---------------------------------------------------------------------------

/// Raw futex syscalls on Linux/x86_64 (the vendored dependency set has no
/// `libc`, so the two calls this module needs are inlined); a bounded
/// sleep elsewhere. No `FUTEX_PRIVATE_FLAG`: doorbells live in shared
/// mappings and must cross process boundaries.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::sync::atomic::AtomicU32;

    const SYS_FUTEX: u64 = 202;
    const FUTEX_WAIT: u64 = 0;
    const FUTEX_WAKE: u64 = 1;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    /// Sleep until `word != expected`, a wake arrives, or `timeout_ns`
    /// elapses — whichever first. Spurious returns are fine; callers
    /// re-check state in a loop.
    pub fn futex_wait(word: &AtomicU32, expected: u32, timeout_ns: u64) {
        let ts = Timespec {
            tv_sec: (timeout_ns / 1_000_000_000) as i64,
            tv_nsec: (timeout_ns % 1_000_000_000) as i64,
        };
        unsafe {
            let mut _ret: i64;
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_FUTEX => _ret,
                in("rdi") word.as_ptr(),
                in("rsi") FUTEX_WAIT,
                in("rdx") expected as u64,
                in("r10") &ts as *const Timespec,
                in("r8") 0u64,
                in("r9") 0u64,
                out("rcx") _,
                out("r11") _,
                options(nostack)
            );
        }
    }

    /// Wake up to `n` waiters parked on `word`.
    pub fn futex_wake(word: &AtomicU32, n: u32) {
        unsafe {
            let mut _ret: i64;
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_FUTEX => _ret,
                in("rdi") word.as_ptr(),
                in("rsi") FUTEX_WAKE,
                in("rdx") n as u64,
                in("r10") 0u64,
                in("r8") 0u64,
                in("r9") 0u64,
                out("rcx") _,
                out("r11") _,
                options(nostack)
            );
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod sys {
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::time::Duration;

    /// Fallback: bounded sleep-poll. The parked-word protocol already
    /// re-checks state after every return, so a missed wake costs at
    /// most one short sleep, never a hang.
    pub fn futex_wait(word: &AtomicU32, expected: u32, timeout_ns: u64) {
        if word.load(Ordering::SeqCst) != expected {
            return;
        }
        std::thread::sleep(Duration::from_nanos(timeout_ns.min(200_000)));
    }

    pub fn futex_wake(_word: &AtomicU32, _n: u32) {}
}

/// One direction of the spin-then-park protocol: a 32-bit parked word a
/// waiter publishes before sleeping, so the other side pays a futex
/// syscall only when someone is actually asleep.
///
/// Wait side: [`prepare_park`](Doorbell::prepare_park) → re-check the
/// guarding condition → [`park`](Doorbell::park) (or
/// [`cancel_park`](Doorbell::cancel_park) if the condition flipped).
/// Wake side: [`ring`](Doorbell::ring) after every state change the
/// waiter could be blocked on.
#[repr(C)]
pub struct Doorbell {
    parked: AtomicU32,
}

impl Doorbell {
    /// A fresh, un-parked doorbell.
    pub const fn new() -> Doorbell {
        Doorbell {
            parked: AtomicU32::new(0),
        }
    }

    /// Announce intent to sleep. Must be followed by a re-check of the
    /// condition being waited on, *then* [`park`](Doorbell::park): the
    /// store-before-recheck order (SeqCst on both sides) closes the race
    /// with a waker that changed state just before the announcement.
    #[inline]
    pub fn prepare_park(&self) {
        self.parked.store(1, Ordering::SeqCst);
    }

    /// The condition flipped during the re-check; stand down.
    #[inline]
    pub fn cancel_park(&self) {
        self.parked.store(0, Ordering::SeqCst);
    }

    /// Sleep until rung or `timeout_ns` elapses. Returns with the parked
    /// word cleared; spurious wakeups are expected.
    #[inline]
    pub fn park(&self, timeout_ns: u64) {
        sys::futex_wait(&self.parked, 1, timeout_ns);
        self.parked.store(0, Ordering::SeqCst);
    }

    /// Wake the waiter if (and only if) one announced itself. Returns
    /// whether a wake syscall was issued.
    #[inline]
    pub fn ring(&self) -> bool {
        if self.parked.swap(0, Ordering::SeqCst) == 1 {
            sys::futex_wake(&self.parked, 1);
            true
        } else {
            false
        }
    }
}

impl Default for Doorbell {
    fn default() -> Self {
        Doorbell::new()
    }
}

// ---------------------------------------------------------------------------
// Ring header
// ---------------------------------------------------------------------------

/// The control block at the start of every ring segment. `#[repr(C)]`
/// with each mutable word on its own cache line, so producer and
/// consumer never false-share: the producer writes only `tail` and rings
/// `consumer_bell`; the consumer writes only `head` and rings
/// `producer_bell`.
#[repr(C)]
struct Header {
    /// [`RING_MAGIC`] once initialized — attachers refuse anything else.
    magic: AtomicU64,
    /// Data capacity in bytes (the segment is `HEADER_BYTES + capacity`).
    capacity: AtomicU64,
    /// Producer set this and will write no more bytes. Consumer-side EOF
    /// once drained.
    closed: AtomicU32,
    _pad0: [u8; CACHE_LINE - 20],
    /// Monotonic count of bytes ever written (producer-owned).
    tail: AtomicU64,
    _pad1: [u8; CACHE_LINE - 8],
    /// Monotonic count of bytes ever read (consumer-owned).
    head: AtomicU64,
    _pad2: [u8; CACHE_LINE - 8],
    /// Rung by the producer when the consumer parked on "ring empty".
    consumer_bell: Doorbell,
    _pad3: [u8; CACHE_LINE - 4],
    /// Rung by the consumer when the producer parked on "ring full".
    producer_bell: Doorbell,
    _pad4: [u8; CACHE_LINE - 4],
}

/// Bytes of segment space the header occupies before ring data starts.
pub const HEADER_BYTES: usize = 5 * CACHE_LINE;
const _: () = assert!(size_of::<Header>() == HEADER_BYTES);

/// Total segment length for a ring holding `capacity` data bytes.
pub fn segment_len(capacity: usize) -> usize {
    HEADER_BYTES + capacity
}

// ---------------------------------------------------------------------------
// The ring
// ---------------------------------------------------------------------------

/// A view of one SPSC ring over caller-provided memory (a shared mmap, or
/// a heap buffer from [`SpscRing::heap`]). Clone the `Arc` and split into
/// the two endpoint handles with [`producer`](SpscRing::producer) /
/// [`consumer`](SpscRing::consumer); the SPSC contract (at most one live
/// handle of each kind actively used at a time) is the caller's to keep.
pub struct SpscRing {
    base: *mut u8,
    capacity: usize,
    /// Whatever owns the memory (an mmap guard, a heap box) — dropped
    /// with the last ring handle.
    _keep: Option<Box<dyn std::any::Any + Send + Sync>>,
}

// The raw pointers are into memory owned (or co-owned) by `_keep`; all
// access goes through atomics and disjoint producer/consumer regions.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl SpscRing {
    /// Initialize a fresh ring in `mem`, whose length must be
    /// `segment_len(capacity)` for the desired capacity (any size ≥ 1;
    /// no power-of-two requirement — positions are full-width counters).
    ///
    /// # Safety
    /// `mem` must point to at least `len` writable bytes, 8-aligned,
    /// that stay valid for as long as `keep` is alive; no other ring may
    /// be initialized over the same memory while this one lives.
    pub unsafe fn init_at(
        mem: *mut u8,
        len: usize,
        keep: Option<Box<dyn std::any::Any + Send + Sync>>,
    ) -> Arc<SpscRing> {
        assert!(len > HEADER_BYTES, "segment too small for a ring header");
        assert_eq!(mem as usize % 8, 0, "ring segment must be 8-aligned");
        let capacity = len - HEADER_BYTES;
        // Zero the header region, then stamp capacity and (last, Release)
        // the magic — an attacher that sees the magic sees the rest.
        std::ptr::write_bytes(mem, 0, HEADER_BYTES);
        let hdr = &*(mem as *const Header);
        hdr.capacity.store(capacity as u64, Ordering::SeqCst);
        hdr.magic.store(RING_MAGIC, Ordering::SeqCst);
        Arc::new(SpscRing {
            base: mem,
            capacity,
            _keep: keep,
        })
    }

    /// Attach to a ring some other process (or handle) initialized in
    /// `mem`. Fails if the magic or capacity don't line up — an
    /// un-initialized or truncated segment, not a ring.
    ///
    /// # Safety
    /// Same aliasing/lifetime contract as [`init_at`](SpscRing::init_at).
    pub unsafe fn attach_at(
        mem: *mut u8,
        len: usize,
        keep: Option<Box<dyn std::any::Any + Send + Sync>>,
    ) -> Result<Arc<SpscRing>, String> {
        if len <= HEADER_BYTES {
            return Err(format!("segment of {len} bytes is too small for a ring"));
        }
        if !(mem as usize).is_multiple_of(8) {
            return Err("ring segment must be 8-aligned".to_string());
        }
        let hdr = &*(mem as *const Header);
        if hdr.magic.load(Ordering::SeqCst) != RING_MAGIC {
            return Err("segment is not an initialized ring (bad magic)".to_string());
        }
        let capacity = hdr.capacity.load(Ordering::SeqCst) as usize;
        if capacity != len - HEADER_BYTES {
            return Err(format!(
                "ring capacity {capacity} does not match segment length {len}"
            ));
        }
        Ok(Arc::new(SpscRing {
            base: mem,
            capacity,
            _keep: keep,
        }))
    }

    /// A heap-backed ring (tests, benches, and the in-process fast path).
    pub fn heap(capacity: usize) -> Arc<SpscRing> {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        let len = segment_len(capacity);
        // 8-aligned backing store; Box<[u64]> keeps the allocation alive.
        let mut words = vec![0u64; len.div_ceil(8)].into_boxed_slice();
        let mem = words.as_mut_ptr() as *mut u8;
        unsafe { SpscRing::init_at(mem, len, Some(Box::new(words))) }
    }

    /// Ring data capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn hdr(&self) -> &Header {
        unsafe { &*(self.base as *const Header) }
    }

    #[inline]
    fn data(&self) -> *mut u8 {
        unsafe { self.base.add(HEADER_BYTES) }
    }

    /// Bytes currently queued (a racy snapshot; exact only from an
    /// endpoint's own thread).
    pub fn len(&self) -> usize {
        let hdr = self.hdr();
        (hdr.tail.load(Ordering::Acquire) - hdr.head.load(Ordering::Acquire)) as usize
    }

    /// Whether the ring is currently empty (same snapshot caveat).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer has closed the ring (bytes may remain).
    pub fn is_closed(&self) -> bool {
        self.hdr().closed.load(Ordering::SeqCst) != 0
    }

    /// The producer endpoint.
    pub fn producer(self: &Arc<Self>) -> Producer {
        Producer {
            ring: Arc::clone(self),
            spins: 0,
            parks: 0,
            spin_waits: 0,
            park_waits: 0,
        }
    }

    /// The consumer endpoint.
    pub fn consumer(self: &Arc<Self>) -> Consumer {
        Consumer {
            ring: Arc::clone(self),
            stop: None,
            spins: 0,
            parks: 0,
            spin_waits: 0,
            park_waits: 0,
        }
    }
}

/// Why a blocking push gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The `abort` predicate returned true while the ring was full
    /// (typically: the peer was declared dead).
    Aborted,
}

/// The writing half. Owns `tail`; the only party that may
/// [`close`](Producer::close) the ring.
pub struct Producer {
    ring: Arc<SpscRing>,
    /// Spin-loop iterations spent waiting on a full ring since the last
    /// [`take_stats`](Producer::take_stats).
    spins: u64,
    /// Doorbell parks taken on a full ring since the last
    /// [`take_stats`](Producer::take_stats).
    parks: u64,
    /// Blocked pushes that resolved in the spin/yield phase (no park)
    /// since the last [`take_wait_stats`](Producer::take_wait_stats).
    spin_waits: u64,
    /// Blocked pushes that parked at least once since the last
    /// [`take_wait_stats`](Producer::take_wait_stats).
    park_waits: u64,
}

impl Producer {
    /// Bytes currently free.
    pub fn free(&self) -> usize {
        let hdr = self.ring.hdr();
        let head = hdr.head.load(Ordering::Acquire);
        let tail = hdr.tail.load(Ordering::Relaxed);
        self.ring.capacity - (tail - head) as usize
    }

    /// Write as much of `buf` as currently fits; returns bytes written.
    /// Publishes the new tail (Release) and rings the consumer doorbell
    /// once per call, so batch writers pay one bell per batch.
    pub fn try_push(&mut self, buf: &[u8]) -> usize {
        if buf.is_empty() {
            return 0;
        }
        let hdr = self.ring.hdr();
        let head = hdr.head.load(Ordering::Acquire);
        let tail = hdr.tail.load(Ordering::Relaxed);
        let cap = self.ring.capacity;
        let free = cap - (tail - head) as usize;
        let n = free.min(buf.len());
        if n == 0 {
            return 0;
        }
        let pos = (tail % cap as u64) as usize;
        let first = n.min(cap - pos);
        unsafe {
            std::ptr::copy_nonoverlapping(buf.as_ptr(), self.ring.data().add(pos), first);
            if n > first {
                std::ptr::copy_nonoverlapping(buf.as_ptr().add(first), self.ring.data(), n - first);
            }
        }
        hdr.tail.store(tail + n as u64, Ordering::Release);
        hdr.consumer_bell.ring();
        n
    }

    /// Write all of `buf`, spin-then-parking whenever the ring is full.
    /// `abort` is polled once per park timeout (≈ every [`PARK_NS`]); a
    /// true return abandons the write mid-record — only do that when the
    /// consumer is gone for good.
    pub fn push_all(&mut self, mut buf: &[u8], abort: impl Fn() -> bool) -> Result<(), PushError> {
        // One blocked call = one wait episode, classified by whether it
        // ever reached a park — the mailbox's RecvSpin/RecvPark split.
        let mut waited = false;
        let mut parked = false;
        while !buf.is_empty() {
            let n = self.try_push(buf);
            buf = &buf[n..];
            if buf.is_empty() {
                break;
            }
            // Full: spin briefly, then yield the core to the consumer,
            // then park on the producer doorbell.
            waited = true;
            let mut moved = false;
            for _ in 0..spin_budget() {
                self.spins += 1;
                std::hint::spin_loop();
                if self.free() > 0 {
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }
            for _ in 0..YIELDS {
                self.spins += 1;
                std::thread::yield_now();
                if self.free() > 0 {
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }
            let hdr = self.ring.hdr();
            hdr.producer_bell.prepare_park();
            if self.free() > 0 {
                hdr.producer_bell.cancel_park();
                continue;
            }
            if abort() {
                hdr.producer_bell.cancel_park();
                self.park_waits += u64::from(parked);
                self.spin_waits += u64::from(!parked);
                return Err(PushError::Aborted);
            }
            self.parks += 1;
            parked = true;
            hdr.producer_bell.park(PARK_NS);
        }
        if parked {
            self.park_waits += 1;
        } else if waited {
            self.spin_waits += 1;
        }
        Ok(())
    }

    /// Close the ring: no more bytes will be written. Wakes the consumer
    /// so it can observe EOF.
    pub fn close(&self) {
        let hdr = self.ring.hdr();
        hdr.closed.store(1, Ordering::SeqCst);
        hdr.consumer_bell.ring();
    }

    /// Drain and reset the (spins, parks) counters accumulated since the
    /// last call.
    pub fn take_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.spins),
            std::mem::take(&mut self.parks),
        )
    }

    /// Drain and reset the (spin-resolved, parked) *wait episode*
    /// counters: each blocked `push_all` counts once, under whichever
    /// resolution it reached.
    pub fn take_wait_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.spin_waits),
            std::mem::take(&mut self.park_waits),
        )
    }

    /// The underlying ring.
    pub fn ring(&self) -> &Arc<SpscRing> {
        &self.ring
    }
}

/// The reading half. Owns `head`. Implements [`io::Read`] with blocking
/// semantics (spin-then-park on empty), which is what lets the shm
/// fabric run the *unmodified* frame decoder over a ring: EOF (`Ok(0)`)
/// is "producer closed and ring drained" — or the stop flag, for reader
/// threads that must exit when a peer is declared dead without ever
/// closing its ring (SIGKILL leaves no close behind).
pub struct Consumer {
    ring: Arc<SpscRing>,
    stop: Option<Arc<AtomicBool>>,
    /// Spin-loop iterations spent waiting on an empty ring since the
    /// last [`take_stats`](Consumer::take_stats).
    spins: u64,
    /// Doorbell parks taken on an empty ring since the last
    /// [`take_stats`](Consumer::take_stats).
    parks: u64,
    /// Blocked reads that resolved in the spin/yield phase (no park)
    /// since the last [`take_wait_stats`](Consumer::take_wait_stats).
    spin_waits: u64,
    /// Blocked reads that parked at least once since the last
    /// [`take_wait_stats`](Consumer::take_wait_stats).
    park_waits: u64,
}

impl Consumer {
    /// Install a stop flag: when it reads true, blocking reads return
    /// EOF at the next park-timeout check.
    pub fn set_stop(&mut self, stop: Arc<AtomicBool>) {
        self.stop = Some(stop);
    }

    /// Bytes currently readable.
    pub fn available(&self) -> usize {
        let hdr = self.ring.hdr();
        let tail = hdr.tail.load(Ordering::Acquire);
        let head = hdr.head.load(Ordering::Relaxed);
        (tail - head) as usize
    }

    /// Read up to `buf.len()` of whatever is queued; returns bytes read
    /// (0 when the ring is empty — *not* EOF). Publishes the new head
    /// (Release) and rings the producer doorbell once per call.
    pub fn try_pop(&mut self, buf: &mut [u8]) -> usize {
        if buf.is_empty() {
            return 0;
        }
        let hdr = self.ring.hdr();
        let tail = hdr.tail.load(Ordering::Acquire);
        let head = hdr.head.load(Ordering::Relaxed);
        let cap = self.ring.capacity;
        let avail = (tail - head) as usize;
        let n = avail.min(buf.len());
        if n == 0 {
            return 0;
        }
        let pos = (head % cap as u64) as usize;
        let first = n.min(cap - pos);
        unsafe {
            std::ptr::copy_nonoverlapping(self.ring.data().add(pos), buf.as_mut_ptr(), first);
            if n > first {
                std::ptr::copy_nonoverlapping(
                    self.ring.data(),
                    buf.as_mut_ptr().add(first),
                    n - first,
                );
            }
        }
        hdr.head.store(head + n as u64, Ordering::Release);
        hdr.producer_bell.ring();
        n
    }

    /// Drain and reset the (spins, parks) counters accumulated since the
    /// last call.
    pub fn take_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.spins),
            std::mem::take(&mut self.parks),
        )
    }

    /// Drain and reset the (spin-resolved, parked) *wait episode*
    /// counters: each blocked read counts once, under whichever
    /// resolution it reached.
    pub fn take_wait_stats(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.spin_waits),
            std::mem::take(&mut self.park_waits),
        )
    }

    /// The underlying ring.
    pub fn ring(&self) -> &Arc<SpscRing> {
        &self.ring
    }

    fn stopped(&self) -> bool {
        self.stop.as_ref().is_some_and(|s| s.load(Ordering::SeqCst))
    }
}

impl io::Read for Consumer {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        // One blocked call = one wait episode, classified by whether it
        // ever reached a park — the mailbox's RecvSpin/RecvPark split.
        let mut waited = false;
        let mut parked = false;
        loop {
            let n = self.try_pop(buf);
            if n > 0 {
                if parked {
                    self.park_waits += 1;
                } else if waited {
                    self.spin_waits += 1;
                }
                return Ok(n);
            }
            // Empty. Closed-and-drained is EOF; the close flag is read
            // AFTER the pop attempt so a close racing the last bytes
            // can't truncate them (close happens-after the final push).
            if self.ring.is_closed() && self.available() == 0 {
                return Ok(0);
            }
            if self.stopped() {
                return Ok(0);
            }
            waited = true;
            let mut moved = false;
            for _ in 0..spin_budget() {
                self.spins += 1;
                std::hint::spin_loop();
                if self.available() > 0 {
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }
            for _ in 0..YIELDS {
                self.spins += 1;
                std::thread::yield_now();
                if self.available() > 0 || self.ring.is_closed() || self.stopped() {
                    moved = true;
                    break;
                }
            }
            if moved {
                continue;
            }
            let hdr = self.ring.hdr();
            hdr.consumer_bell.prepare_park();
            if self.available() > 0 || self.ring.is_closed() || self.stopped() {
                hdr.consumer_bell.cancel_park();
                continue;
            }
            self.parks += 1;
            parked = true;
            hdr.consumer_bell.park(PARK_NS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn roundtrips_across_the_wrap_boundary() {
        let ring = SpscRing::heap(16);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        // 5 pushes of 7 bytes through a 16-byte ring forces wraparound.
        for round in 0u8..5 {
            let msg = [round; 7];
            p.push_all(&msg, || false).unwrap();
            let mut got = [0u8; 7];
            c.read_exact(&mut got).unwrap();
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn records_larger_than_the_ring_stream_through() {
        let ring = SpscRing::heap(8);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        let msg: Vec<u8> = (0..=255).collect();
        let writer = std::thread::spawn({
            let msg = msg.clone();
            move || p.push_all(&msg, || false).unwrap()
        });
        let mut got = vec![0u8; msg.len()];
        c.read_exact(&mut got).unwrap();
        writer.join().unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn close_is_eof_only_after_drain() {
        let ring = SpscRing::heap(64);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        p.push_all(b"tail bytes", || false).unwrap();
        p.close();
        let mut got = Vec::new();
        c.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"tail bytes");
    }

    #[test]
    fn stop_flag_unblocks_an_empty_read() {
        let ring = SpscRing::heap(64);
        let mut c = ring.consumer();
        let stop = Arc::new(AtomicBool::new(false));
        c.set_stop(Arc::clone(&stop));
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 8];
            c.read(&mut buf).unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, Ordering::SeqCst);
        assert_eq!(reader.join().unwrap(), 0);
    }

    #[test]
    fn aborted_push_reports_aborted() {
        let ring = SpscRing::heap(4);
        let mut p = ring.producer();
        let err = p.push_all(&[0u8; 32], || true).unwrap_err();
        assert_eq!(err, PushError::Aborted);
    }

    #[test]
    fn threaded_transfer_is_exact_and_ordered() {
        let ring = SpscRing::heap(256);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        const TOTAL: usize = 1 << 20;
        let writer = std::thread::spawn(move || {
            let mut sent = 0usize;
            let mut chunk = 1usize;
            while sent < TOTAL {
                let n = chunk.min(TOTAL - sent);
                let bytes: Vec<u8> = (sent..sent + n).map(|i| (i % 251) as u8).collect();
                p.push_all(&bytes, || false).unwrap();
                sent += n;
                chunk = chunk % 97 + 1; // vary the record size
            }
            p.close();
        });
        let mut got = Vec::with_capacity(TOTAL);
        c.read_to_end(&mut got).unwrap();
        writer.join().unwrap();
        assert_eq!(got.len(), TOTAL);
        assert!(got.iter().enumerate().all(|(i, &b)| b == (i % 251) as u8));
    }

    #[test]
    fn attach_validates_magic_and_capacity() {
        let len = segment_len(64);
        let mut raw = vec![0u64; len.div_ceil(8)].into_boxed_slice();
        let mem = raw.as_mut_ptr() as *mut u8;
        // Un-initialized memory is refused...
        assert!(unsafe { SpscRing::attach_at(mem, len, None) }.is_err());
        // ...an initialized ring is accepted and shares state.
        let ring = unsafe { SpscRing::init_at(mem, len, None) };
        let attached = unsafe { SpscRing::attach_at(mem, len, None) }.unwrap();
        let mut p = ring.producer();
        let mut c = attached.consumer();
        p.push_all(b"hello", || false).unwrap();
        let mut got = [0u8; 5];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello");
        drop((ring, attached));
        drop(raw);
    }

    #[test]
    fn park_stats_count_blocked_waits() {
        let ring = SpscRing::heap(4);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        let writer = std::thread::spawn(move || {
            p.push_all(&[7u8; 64], || false).unwrap();
            (p.take_stats(), p.take_wait_stats())
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let mut got = vec![0u8; 64];
        c.read_exact(&mut got).unwrap();
        let ((spins, parks), (spin_waits, park_waits)) = writer.join().unwrap();
        // The producer had to wait for the slow consumer somehow, and the
        // blocked push must be classified as exactly one wait episode.
        assert!(spins > 0 || parks > 0);
        assert_eq!(spin_waits + park_waits, 1);
    }

    #[test]
    fn unblocked_transfers_record_no_wait_episodes() {
        let ring = SpscRing::heap(64);
        let mut p = ring.producer();
        let mut c = ring.consumer();
        p.push_all(b"fits easily", || false).unwrap();
        let mut got = [0u8; 11];
        c.read_exact(&mut got).unwrap();
        assert_eq!(p.take_wait_stats(), (0, 0));
        assert_eq!(c.take_wait_stats(), (0, 0));
    }
}
