#![warn(missing_docs)]
//! Umbrella crate for the patternlets reproduction workspace.
//!
//! Re-exports every member crate so integration tests and examples can use
//! one coherent namespace. See `DESIGN.md` at the repository root.

pub use patternlets as collection;
pub use patternlets_catalog as catalog;
pub use patternlets_core as core;
pub use patternlets_edu as edu;
pub use patternlets_mp as mp;
pub use patternlets_shmem as shmem;
pub use patternlets_vtime as vtime;
